// Spatz vector-unit semantics: vsetvli, LMUL grouping, every arithmetic
// opcode's math, chaining timing, reductions — run on a single-tile cluster
// so timing is deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/cluster/cluster.hpp"
#include "src/isa/program.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

// Single-tile config (vlmax: m1=4, m2=8, m4=16, m8=32 at VLEN 128).
using test::one_tile_config;

constexpr Addr kX = 0x100, kY = 0x200, kZ = 0x300;

/// Preloads x[i] = i+1, y[i] = 2(i+1) for 32 elements.
void preload(Cluster& c) {
  for (unsigned i = 0; i < 32; ++i) {
    c.write_f32(kX + 4 * i, static_cast<float>(i + 1));
    c.write_f32(kY + 4 * i, 2.0f * static_cast<float>(i + 1));
  }
}

/// Runs: load x->v8, y->v16, apply `body`, store v24 -> kZ (vl=8, m2).
std::vector<float> run_binary_op(void (*body)(ProgramBuilder&), unsigned vl = 8) {
  Cluster cluster(one_tile_config());
  preload(cluster);
  ProgramBuilder pb;
  pb.li(t0, static_cast<std::int32_t>(vl));
  pb.vsetvli(t1, t0, Lmul::m2);
  pb.li(a2, kX);
  pb.li(a3, kY);
  pb.li(a4, kZ);
  pb.vle32(VReg{8}, a2);
  pb.vle32(VReg{16}, a3);
  body(pb);
  pb.vse32(VReg{24}, a4);
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
  return cluster.read_block_f32(kZ, vl);
}

TEST(Spatz, VfaddVV) {
  const auto r = run_binary_op(+[](ProgramBuilder& pb) {
    pb.vfadd_vv(VReg{24}, VReg{8}, VReg{16});
  });
  for (unsigned i = 0; i < r.size(); ++i) EXPECT_FLOAT_EQ(r[i], 3.0f * (i + 1));
}

TEST(Spatz, VfsubVV) {
  const auto r = run_binary_op(+[](ProgramBuilder& pb) {
    pb.vfsub_vv(VReg{24}, VReg{8}, VReg{16});
  });
  for (unsigned i = 0; i < r.size(); ++i) EXPECT_FLOAT_EQ(r[i], -1.0f * (i + 1));
}

TEST(Spatz, VfmulVV) {
  const auto r = run_binary_op(+[](ProgramBuilder& pb) {
    pb.vfmul_vv(VReg{24}, VReg{8}, VReg{16});
  });
  for (unsigned i = 0; i < r.size(); ++i) {
    EXPECT_FLOAT_EQ(r[i], 2.0f * (i + 1) * (i + 1));
  }
}

TEST(Spatz, VfmaccAndVfnmsacVV) {
  const auto r = run_binary_op(+[](ProgramBuilder& pb) {
    pb.fmv_w_x(ft0, x0);
    pb.vfmv_v_f(VReg{24}, ft0);
    pb.vfmacc_vv(VReg{24}, VReg{8}, VReg{16});   // += x*y
    pb.vfnmsac_vv(VReg{24}, VReg{8}, VReg{8});   // -= x*x
  });
  for (unsigned i = 0; i < r.size(); ++i) {
    const float x = static_cast<float>(i + 1);
    EXPECT_FLOAT_EQ(r[i], 2.0f * x * x - x * x);
  }
}

TEST(Spatz, VfScalarForms) {
  const auto r = run_binary_op(+[](ProgramBuilder& pb) {
    pb.li(t2, f32_to_word(10.0f));
    pb.fmv_w_x(ft1, t2);
    pb.vfmul_vf(VReg{24}, ft1, VReg{8});   // 10x
    pb.vfadd_vf(VReg{24}, ft1, VReg{24});  // 10x + 10  ... vd = f + vs2
    pb.vfmacc_vf(VReg{24}, ft1, VReg{8});  // += 10x -> 20x + 10
  });
  for (unsigned i = 0; i < r.size(); ++i) {
    EXPECT_FLOAT_EQ(r[i], 20.0f * (i + 1) + 10.0f);
  }
}

TEST(Spatz, VsetvliClampsToVlmax) {
  Cluster cluster(one_tile_config());
  ProgramBuilder pb;
  pb.li(t0, 1000);
  pb.vsetvli(a2, t0, Lmul::m1);
  pb.vsetvli(a3, t0, Lmul::m4);
  pb.li(t0, 3);
  pb.vsetvli(a4, t0, Lmul::m8);
  pb.li(t6, 0x40);
  pb.sw(a2, t6, 0);
  pb.sw(a3, t6, 4);
  pb.sw(a4, t6, 8);
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(10'000).all_halted);
  EXPECT_EQ(cluster.read_word(0x40), 4u);   // VLEN 128 / 32
  EXPECT_EQ(cluster.read_word(0x44), 16u);  // m4
  EXPECT_EQ(cluster.read_word(0x48), 3u);   // avl smaller
}

TEST(Spatz, LmulGroupSpansRegisters) {
  // m4 load of 16 elements writes v8..v11; reading v10 as m1 (elements
  // 8..11) must see the loaded values.
  Cluster cluster(one_tile_config());
  preload(cluster);
  ProgramBuilder pb;
  pb.li(t0, 16);
  pb.vsetvli(t1, t0, Lmul::m4);
  pb.li(a2, kX);
  pb.vle32(VReg{8}, a2);
  pb.li(t0, 4);
  pb.vsetvli(t1, t0, Lmul::m1);
  pb.li(a4, kZ);
  pb.vse32(VReg{10}, a4);
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(20'000).all_halted);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 4 * i), static_cast<float>(8 + i + 1));
  }
}

TEST(Spatz, ReductionSumsWholeVector) {
  Cluster cluster(one_tile_config());
  preload(cluster);
  ProgramBuilder pb;
  pb.li(t0, 16);
  pb.vsetvli(t1, t0, Lmul::m4);
  pb.li(a2, kX);
  pb.vle32(VReg{8}, a2);
  pb.li(t2, f32_to_word(0.5f));
  pb.fmv_w_x(ft1, t2);
  pb.vfmv_v_f(VReg{16}, ft1);  // scalar seed 0.5
  pb.vfredusum(VReg{24}, VReg{8}, VReg{16});
  pb.li(t0, 1);
  pb.vsetvli(t1, t0, Lmul::m1);
  pb.li(a4, kZ);
  pb.vse32(VReg{24}, a4);
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(20'000).all_halted);
  EXPECT_FLOAT_EQ(cluster.read_f32(kZ), 0.5f + 16 * 17 / 2);
}

TEST(Spatz, ChainingStartsBeforeLoadCompletes) {
  // A dependent vfadd chained on a vle32 must finish well before the
  // non-chained bound (load fully retires, then add runs).
  Cluster cluster(one_tile_config());
  preload(cluster);
  ProgramBuilder pb;
  pb.li(t0, 32);
  pb.vsetvli(t1, t0, Lmul::m8);
  pb.li(a2, kX);
  pb.li(a4, kZ);
  pb.vle32(VReg{8}, a2);
  pb.vfadd_vv(VReg{16}, VReg{8}, VReg{8});
  pb.vse32(VReg{16}, a4);
  pb.halt();
  cluster.load_program(pb.build());
  const RunOutcome out = cluster.run(20'000);
  ASSERT_TRUE(out.all_halted);
  for (unsigned i = 0; i < 32; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 4 * i), 2.0f * (i + 1));
  }
  // Rough timing bound: load issues 8 beats (8 cycles); with chaining the
  // add+store pipeline should finish the whole program in well under the
  // serialized bound of ~3 x 32 element-steps.
  EXPECT_LT(out.cycles, 80u);
}

TEST(Spatz, WawHazardSerializesWriters) {
  // Two loads into the same register group: the second must wait; the final
  // stored values are from the second load.
  Cluster cluster(one_tile_config());
  preload(cluster);
  ProgramBuilder pb;
  pb.li(t0, 8);
  pb.vsetvli(t1, t0, Lmul::m2);
  pb.li(a2, kX);
  pb.li(a3, kY);
  pb.li(a4, kZ);
  pb.vle32(VReg{8}, a2);
  pb.vle32(VReg{8}, a3);  // WAW on v8
  pb.vse32(VReg{8}, a4);
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(20'000).all_halted);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 4 * i), 2.0f * (i + 1));
  }
}

TEST(Spatz, PartialTailVectorLength) {
  // vl = 5 with m2: only five elements move.
  Cluster cluster(one_tile_config());
  preload(cluster);
  for (unsigned i = 0; i < 8; ++i) cluster.write_f32(kZ + 4 * i, -1.0f);
  ProgramBuilder pb;
  pb.li(t0, 5);
  pb.vsetvli(t1, t0, Lmul::m2);
  pb.li(a2, kX);
  pb.li(a4, kZ);
  pb.vle32(VReg{8}, a2);
  pb.vse32(VReg{8}, a4);
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(20'000).all_halted);
  for (unsigned i = 0; i < 5; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 4 * i), static_cast<float>(i + 1));
  }
  for (unsigned i = 5; i < 8; ++i) EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 4 * i), -1.0f);
}

TEST(Spatz, ScatterWritesIndexedElements) {
  Cluster cluster(one_tile_config());
  preload(cluster);
  const Word offs[4] = {12, 0, 8, 4};  // byte offsets: reverse order
  for (unsigned i = 0; i < 4; ++i) cluster.write_word(0x80 + 4 * i, offs[i]);
  ProgramBuilder pb;
  pb.li(t0, 4);
  pb.vsetvli(t1, t0, Lmul::m1);
  pb.li(a2, kX);
  pb.li(a3, 0x80);
  pb.li(a4, kZ);
  pb.vle32(VReg{1}, a2);      // data 1,2,3,4
  pb.vle32(VReg{2}, a3);      // offsets
  pb.vsuxei32(VReg{1}, a4, VReg{2});
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(20'000).all_halted);
  EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 12), 1.0f);
  EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 0), 2.0f);
  EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 8), 3.0f);
  EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 4), 4.0f);
}

TEST(Spatz, StridedStoreWritesEveryOtherWord) {
  Cluster cluster(one_tile_config());
  preload(cluster);
  for (unsigned i = 0; i < 8; ++i) cluster.write_f32(kZ + 4 * i, 0.0f);
  ProgramBuilder pb;
  pb.li(t0, 4);
  pb.vsetvli(t1, t0, Lmul::m1);
  pb.li(a2, kX);
  pb.li(a4, kZ);
  pb.li(a5, 8);  // stride bytes
  pb.vle32(VReg{1}, a2);
  pb.vsse32(VReg{1}, a4, a5);
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(20'000).all_halted);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 8 * i), static_cast<float>(i + 1));
    EXPECT_FLOAT_EQ(cluster.read_f32(kZ + 8 * i + 4), 0.0f);
  }
}

}  // namespace
}  // namespace tcdm
