// Analytics tests. The bandwidth model must reproduce Table I of the paper
// EXACTLY (it is a closed form); the area model must land on the published
// deltas; the power model must behave monotonically; report formatting.
#include <gtest/gtest.h>

#include "src/analytics/area_model.hpp"
#include "src/analytics/bandwidth_model.hpp"
#include "src/analytics/power_model.hpp"
#include "src/analytics/report.hpp"
#include "src/analytics/roofline.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

// ------------------------------------------------------- Table I (exact) --

// NOTE on the baseline utilization rows: the paper's printed baseline
// utilizations (37.50% / 21.38% / 11.75%) are inconsistent with its own
// baseline bandwidths divided by its own peaks (7/16 = 43.75%, 4.18/16 =
// 26.1%, 4.22/32 = 13.2%), while every GF2/GF4 row does match BW/peak.
// We assert the self-consistent definition (BW/peak) and record the
// paper's printed values in EXPERIMENTS.md.
TEST(BandwidthModel, PaperTable1Mp4Spatz4) {
  const auto c = model::table1_column(test::mp4_config());
  EXPECT_DOUBLE_EQ(c.peak, 16.00);
  EXPECT_NEAR(c.baseline_bw, 7.00, 0.005);
  EXPECT_NEAR(c.baseline_util, 7.00 / 16.00, 0.0001);
  EXPECT_NEAR(c.gf2_bw, 10.00, 0.005);
  EXPECT_NEAR(c.gf2_util, 0.6250, 0.0001);
  EXPECT_NEAR(c.gf2_improvement, 0.4286, 0.0001);   // +42.86%
  EXPECT_NEAR(c.gf4_bw, 16.00, 0.005);
  EXPECT_NEAR(c.gf4_util, 1.0000, 0.0001);
  EXPECT_NEAR(c.gf4_improvement, 1.2857, 0.0001);   // +128.57%
}

// NOTE on the improvement rows: the paper divides the (unrounded) GF
// bandwidths by its baseline ROUNDED to two decimals — e.g. MP64 GF2:
// 8.125/4.18 - 1 = +94.38% (printed) vs the exact 8.125/4.1875 - 1 =
// +94.03%. We assert the exact closed form; the paper's printed values are
// recovered in EXPERIMENTS.md by redoing its rounding.
TEST(BandwidthModel, PaperTable1Mp64Spatz4) {
  const auto c = model::table1_column(ClusterConfig::mp64spatz4());
  EXPECT_DOUBLE_EQ(c.peak, 16.00);
  EXPECT_DOUBLE_EQ(c.baseline_bw, 4.1875);  // paper rounds -> 4.18
  EXPECT_NEAR(c.baseline_util, 4.1875 / 16.0, 0.001);
  EXPECT_DOUBLE_EQ(c.gf2_bw, 8.125);        // paper rounds -> 8.13
  EXPECT_NEAR(c.gf2_util, 0.5078, 0.001);
  EXPECT_NEAR(c.gf2_improvement, 8.125 / 4.1875 - 1.0, 1e-9);   // +94.03%
  EXPECT_DOUBLE_EQ(c.gf4_bw, 16.00);
  EXPECT_NEAR(c.gf4_improvement, 16.0 / 4.1875 - 1.0, 1e-9);    // +282.09%
  // The paper's printed improvements follow from its rounded baseline.
  EXPECT_NEAR(8.125 / 4.18 - 1.0, 0.9438, 0.0001);   // printed +94.38%
  EXPECT_NEAR(16.0 / 4.18 - 1.0, 2.8278, 0.0005);    // printed +282.78%
}

TEST(BandwidthModel, PaperTable1Mp128Spatz8) {
  const auto c = model::table1_column(ClusterConfig::mp128spatz8());
  EXPECT_DOUBLE_EQ(c.peak, 32.00);
  EXPECT_DOUBLE_EQ(c.baseline_bw, 4.21875);  // paper rounds -> 4.22
  EXPECT_NEAR(c.baseline_util, 4.21875 / 32.0, 0.0005);
  EXPECT_DOUBLE_EQ(c.gf2_bw, 8.1875);        // paper rounds -> 8.19
  EXPECT_NEAR(c.gf2_util, 0.2559, 0.0005);
  EXPECT_NEAR(c.gf2_improvement, 8.1875 / 4.21875 - 1.0, 1e-9);  // +94.07%
  EXPECT_DOUBLE_EQ(c.gf4_bw, 16.125);        // paper rounds -> 16.13
  EXPECT_NEAR(c.gf4_util, 0.5039, 0.0005);
  EXPECT_NEAR(c.gf4_improvement, 16.125 / 4.21875 - 1.0, 1e-9);  // +282.22%
  // The paper's printed improvements follow from its rounded baseline.
  EXPECT_NEAR(8.1875 / 4.22 - 1.0, 0.9402, 0.0001);   // printed +94.02%
  EXPECT_NEAR(16.125 / 4.22 - 1.0, 2.8211, 0.0005);   // printed +282.11%
}

TEST(BandwidthModel, GfSaturatesAtPortCount) {
  // GF beyond K cannot exceed the VLSU width (eq. 3 cap).
  EXPECT_DOUBLE_EQ(model::remote_hier_bw(4, 8), model::remote_hier_bw(4, 4));
  EXPECT_DOUBLE_EQ(model::remote_hier_bw(8, 8), 32.0);
}

TEST(BandwidthModel, MonotonicInGf) {
  for (unsigned npe : {4u, 64u, 128u}) {
    for (unsigned k : {4u, 8u}) {
      double prev = 0.0;
      for (unsigned gf : {1u, 2u, 4u, 8u}) {
        const double bw = model::hier_avg_bw(npe, k, gf);
        EXPECT_GE(bw, prev);
        prev = bw;
      }
    }
  }
}

TEST(BandwidthModel, UtilizationDropsWithScaleAtFixedGf) {
  // The paper's motivation: bigger clusters waste more of their peak.
  EXPECT_GT(model::utilization(4, 4, 1), model::utilization(64, 4, 1));
  EXPECT_GT(model::utilization(64, 4, 1), model::utilization(128, 8, 1));
}

// ------------------------------------------------------------- area model --

TEST(AreaModel, PaperDeltasOnMp64Gf4) {
  const auto base = estimate_area(ClusterConfig::mp64spatz4());
  const auto gf4 = estimate_area(ClusterConfig::mp64spatz4().with_burst(4));
  // Paper §V-A: +35% VLSU, +51% interconnect logic, ~+1.5 MGE BM+BS,
  // ~+4.5 MGE total, <8% overall.
  EXPECT_NEAR(gf4.vlsu / base.vlsu - 1.0, 0.35, 0.02);
  EXPECT_NEAR(gf4.interconnect / base.interconnect - 1.0, 0.51, 0.02);
  EXPECT_NEAR((gf4.burst - base.burst) / 1e6, 1.5, 0.15);
  EXPECT_NEAR((gf4.total() - base.total()) / 1e6, 4.5, 0.5);
  EXPECT_LT(area_overhead(base, gf4), 0.08);
  EXPECT_GT(area_overhead(base, gf4), 0.04);
}

TEST(AreaModel, OverheadUnder8PercentForAllPresets) {
  const struct {
    ClusterConfig base;
    unsigned gf;
  } cases[] = {{test::mp4_config(), 4},
               {ClusterConfig::mp64spatz4(), 4},
               {ClusterConfig::mp128spatz8(), 2}};
  for (const auto& tc : cases) {
    const auto base = estimate_area(tc.base);
    const auto ext = estimate_area(tc.base.with_burst(tc.gf));
    EXPECT_LT(area_overhead(base, ext), 0.08) << tc.base.name;
    EXPECT_GT(area_overhead(base, ext), 0.0) << tc.base.name;
  }
}

TEST(AreaModel, ScalesWithClusterSize) {
  const auto a4 = estimate_area(test::mp4_config());
  const auto a64 = estimate_area(ClusterConfig::mp64spatz4());
  const auto a128 = estimate_area(ClusterConfig::mp128spatz8());
  EXPECT_GT(a64.total(), 10.0 * a4.total());
  EXPECT_GT(a128.total(), 2.0 * a64.total());  // 2x tiles, wider cores
}

TEST(AreaModel, Gf2CheaperThanGf4) {
  const auto gf2 = estimate_area(ClusterConfig::mp64spatz4().with_burst(2));
  const auto gf4 = estimate_area(ClusterConfig::mp64spatz4().with_burst(4));
  EXPECT_LT(gf2.total(), gf4.total());
}

// ------------------------------------------------------------ power model --

TEST(PowerModel, MoreActivityMorePower) {
  // Two synthetic runs on the same config: the one with more traffic in the
  // same number of cycles must draw more power.
  ClusterConfig cfg = test::mp4_config();
  Cluster quiet(cfg);
  Cluster busy(cfg);
  busy.stats().counter("cc0.spatz.vfpu.flops").inc(1e6);
  busy.stats().counter("cc0.spatz.vlsu.words_loaded").inc(1e5);
  busy.stats().counter("tile0.bank0.reads").inc(1e5);
  const auto pq = estimate_power(quiet, 1000, cfg.freq_tt_mhz);
  const auto pb = estimate_power(busy, 1000, cfg.freq_tt_mhz);
  EXPECT_GT(pb.total(), pq.total());
  EXPECT_GT(pb.fpu_w, 0.0);
  EXPECT_DOUBLE_EQ(pq.fpu_w, 0.0);
  // Idle power is area-proportional and identical.
  EXPECT_DOUBLE_EQ(pq.static_w, pb.static_w);
}

TEST(PowerModel, EnergyEfficiencyDefinition) {
  PowerBreakdown p;
  p.fpu_w = 1.0;
  p.static_w = 1.0;
  EXPECT_DOUBLE_EQ(energy_efficiency(100.0, p), 50.0);
  EXPECT_DOUBLE_EQ(energy_efficiency(100.0, PowerBreakdown{}), 0.0);
}

TEST(PowerModel, ZeroCyclesIsSafe) {
  Cluster c(test::mp4_config());
  const auto p = estimate_power(c, 0, 910.0);
  EXPECT_DOUBLE_EQ(p.total(), 0.0);
}

// --------------------------------------------------------------- roofline --

TEST(Roofline, KneeAndRegions) {
  const Roofline rl = make_roofline(test::mp4_config(), 24.0);
  // Peak: 32 FLOP/cyc * 0.77 GHz = 24.64 GFLOPS.
  EXPECT_NEAR(rl.peak_gflops, 24.64, 0.01);
  // Ideal BW: 64 B/cyc * 0.77 GHz.
  EXPECT_NEAR(rl.ideal_bw_gbps, 49.28, 0.01);
  // Below the knee: memory-bound (linear in AI); above: flat.
  const double knee = rl.knee(rl.ideal_bw_gbps);
  EXPECT_NEAR(rl.attainable_ideal(knee / 2), rl.peak_gflops / 2, 1e-9);
  EXPECT_DOUBLE_EQ(rl.attainable_ideal(knee * 4), rl.peak_gflops);
  EXPECT_LT(rl.attainable_measured(0.25), rl.attainable_ideal(0.25));
}

TEST(Roofline, CsvContainsSeries) {
  const Roofline rl = make_roofline(ClusterConfig::mp64spatz4(), 100.0);
  const std::string csv =
      roofline_csv(rl, {{"dotp-base", 0.25, 10.0}, {"matmul", 2.9, 200.0}});
  EXPECT_NE(csv.find("ideal,"), std::string::npos);
  EXPECT_NE(csv.find("measured,"), std::string::npos);
  EXPECT_NE(csv.find("dotp-base,0.25,10"), std::string::npos);
}

// ----------------------------------------------------------------- report --

TEST(Report, TableAlignsAndSeparates) {
  TableWriter tw({"name", "value"});
  tw.add_row({"alpha", "1"});
  tw.add_separator();
  tw.add_row({"b", "22222"});
  const std::string s = tw.str();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Report, Formatting) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(pct(0.375, 2), "37.50%");
  EXPECT_EQ(delta(0.4286, 2), "+42.86%");
  EXPECT_EQ(delta(-0.05, 1), "-5.0%");
}

}  // namespace
}  // namespace tcdm
