// HierNetwork unit tests driven by a bare network instance: zero-load
// latencies, request-port serialization, response-channel gating, FCFS
// egress fairness, backpressure, and store-ack out-of-band delivery.
#include <gtest/gtest.h>

#include <vector>

#include "src/interconnect/network.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

struct CollectSink : RspSink {
  struct Item {
    TcdmResp rsp;
    Cycle at;
  };
  std::vector<Item> items;
  void deliver_rsp(const TcdmResp& rsp, Cycle now) override {
    items.push_back({rsp, now});
  }
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : topo_(test::two_pair_topology()),  // 4 tiles: pairs with RT3 / RT5
        net_(topo_, NetworkConfig{}, stats_) {}

  TcdmReq make_req(TileId src, Addr addr = 0, unsigned len = 1) {
    TcdmReq r;
    r.addr = addr;
    r.len = static_cast<std::uint8_t>(len);
    r.src_tile = src;
    return r;
  }

  StatsRegistry stats_;
  Topology topo_;
  HierNetwork net_;
  CollectSink sink_;
};

TEST_F(NetworkTest, RequestArrivesAfterClassLatency) {
  // Tile 0 -> tile 1: same lowest node, class 0, request latency 1.
  const std::uint8_t cls = topo_.class_of(0, 1);
  ASSERT_TRUE(net_.can_send_req(0, cls, 0));
  net_.send_req(0, 1, make_req(0), 0);
  net_.cycle(0, sink_);
  EXPECT_TRUE(net_.slave_empty(1, cls));  // latency not yet elapsed
  net_.cycle(1, sink_);
  EXPECT_FALSE(net_.slave_empty(1, cls));
}

TEST_F(NetworkTest, LongerLatencyForHigherLevel) {
  // Tile 0 -> tile 2: different level-1 node, request latency 2.
  const std::uint8_t cls = topo_.class_of(0, 2);
  net_.send_req(0, 2, make_req(0), 0);
  net_.cycle(1, sink_);
  EXPECT_TRUE(net_.slave_empty(2, cls));
  net_.cycle(2, sink_);
  EXPECT_FALSE(net_.slave_empty(2, cls));
}

TEST_F(NetworkTest, MasterPortSerializesOnePerCycle) {
  const std::uint8_t cls = topo_.class_of(0, 1);
  EXPECT_TRUE(net_.can_send_req(0, cls, 5));
  net_.send_req(0, 1, make_req(0), 5);
  EXPECT_FALSE(net_.can_send_req(0, cls, 5));  // port used this cycle
  EXPECT_TRUE(net_.can_send_req(0, cls, 6));
}

TEST_F(NetworkTest, DistinctClassesSendInParallel) {
  const std::uint8_t c1 = topo_.class_of(0, 1);
  const std::uint8_t c2 = topo_.class_of(0, 2);
  ASSERT_NE(c1, c2);
  net_.send_req(0, 1, make_req(0), 0);
  EXPECT_TRUE(net_.can_send_req(0, c2, 0));  // per-class physical ports
  net_.send_req(0, 2, make_req(0), 0);
}

TEST_F(NetworkTest, EgressDeliversOnePerClassPerCycleFcfs) {
  // Tiles 1,2,3 all target tile 0; tile 1 arrives on class 0 (latency 1),
  // tiles 2,3 share the remote class (latency 2), so its egress delivers
  // them one per cycle: 2 of 3 arrived after cycle 2, all 3 after cycle 3.
  net_.send_req(1, 0, make_req(1), 0);
  net_.send_req(2, 0, make_req(2), 0);
  net_.send_req(3, 0, make_req(3), 0);
  const auto drain = [&] {
    unsigned arrived = 0;
    for (unsigned cls = 0; cls < topo_.num_classes(); ++cls) {
      while (!net_.slave_empty(0, static_cast<std::uint8_t>(cls))) {
        (void)net_.slave_pop(0, static_cast<std::uint8_t>(cls));
        ++arrived;
      }
    }
    return arrived;
  };
  for (Cycle c = 0; c <= 2; ++c) net_.cycle(c, sink_);
  EXPECT_EQ(drain(), 2u);  // same-class pair serialized at the egress
  net_.cycle(3, sink_);
  EXPECT_EQ(drain(), 1u);
}

TEST_F(NetworkTest, SameClassContentionServedOverTime) {
  // Tiles 2 and 3 are the same level-1 sibling group from tile 0's view?
  // No — but tiles 1..3 -> 0 on the same class happens from 1 only. Use two
  // requests from tile 1 instead: strictly one arrival per cycle.
  const std::uint8_t cls = topo_.class_of(1, 0);
  net_.send_req(1, 0, make_req(1, 0x0), 0);
  net_.cycle(0, sink_);
  net_.send_req(1, 0, make_req(1, 0x4), 1);
  net_.cycle(1, sink_);
  EXPECT_FALSE(net_.slave_empty(0, cls));
  (void)net_.slave_pop(0, cls);
  EXPECT_TRUE(net_.slave_empty(0, cls));  // second still in flight
  net_.cycle(2, sink_);
  EXPECT_FALSE(net_.slave_empty(0, cls));
}

TEST_F(NetworkTest, ResponseRoundTripAndEgressGate) {
  // Responses from two different responders to tile 0 in the same cycle:
  // the CC-side egress retires at most one beat per cycle.
  TcdmResp r1;
  r1.dst_tile = 0;
  r1.num_words = 1;
  TcdmResp r2 = r1;
  ASSERT_TRUE(net_.can_send_rsp(1, topo_.class_of(1, 0), 0));
  net_.send_rsp(1, r1, 0);
  ASSERT_TRUE(net_.can_send_rsp(2, topo_.class_of(2, 0), 0));
  net_.send_rsp(2, r2, 0);
  net_.cycle(1, sink_);  // class-0 response (lat 1) ready
  net_.cycle(2, sink_);  // level-1 response (lat 2) ready
  net_.cycle(3, sink_);
  ASSERT_EQ(sink_.items.size(), 2u);
  EXPECT_LT(sink_.items[0].at, sink_.items[1].at);  // one beat per cycle
}

TEST_F(NetworkTest, SlaveBackpressureStallsEgress) {
  // Push 6 requests toward tile 1 while cycling the network (the master
  // FIFO holds only latency+2 entries, so sender and network must overlap).
  // The slave queue (depth 4) fills; the remainder waits in the master FIFO.
  const std::uint8_t cls = topo_.class_of(0, 1);
  Cycle c = 0;
  unsigned sent = 0;
  while (sent < 6) {
    ASSERT_LT(c, 50u) << "sender starved";
    if (net_.can_send_req(0, cls, c)) {
      net_.send_req(0, 1, make_req(0, sent * 4), c);
      ++sent;
    }
    net_.cycle(c, sink_);
    ++c;
  }
  for (; c < 30; ++c) net_.cycle(c, sink_);
  unsigned queued = 0;
  while (!net_.slave_empty(1, cls)) {
    (void)net_.slave_pop(1, cls);
    ++queued;
  }
  EXPECT_EQ(queued, 4u);  // slave depth
  EXPECT_TRUE(net_.busy());  // the rest still waits in the master FIFO
  for (; c < 40; ++c) net_.cycle(c, sink_);
  queued = 0;
  while (!net_.slave_empty(1, cls)) {
    (void)net_.slave_pop(1, cls);
    ++queued;
  }
  EXPECT_EQ(queued, 2u);
  EXPECT_FALSE(net_.busy());
}

TEST_F(NetworkTest, StoreAckArrivesOutOfBandWithLatency) {
  net_.send_store_ack(2, 0, ReqOwner::kVecNarrow, 10);  // rsp latency 2
  net_.cycle(10, sink_);
  net_.cycle(11, sink_);
  EXPECT_TRUE(sink_.items.empty());
  net_.cycle(12, sink_);
  ASSERT_EQ(sink_.items.size(), 1u);
  EXPECT_TRUE(sink_.items[0].rsp.write_ack);
  EXPECT_EQ(sink_.items[0].rsp.tag.owner, ReqOwner::kVecNarrow);
}

TEST_F(NetworkTest, StoreAcksDoNotConsumeResponseBeats) {
  // An ack and a data beat both due at cycle 2 are delivered together: the
  // ack channel is out of band.
  TcdmResp data;
  data.dst_tile = 0;
  net_.send_rsp(1, data, 0);                             // ready at 1
  net_.send_store_ack(1, 0, ReqOwner::kScalar, 0);       // ready at 1
  net_.cycle(1, sink_);
  EXPECT_EQ(sink_.items.size(), 2u);
}

TEST_F(NetworkTest, WideBeatCarriesGroupedWords) {
  StatsRegistry stats2;
  HierNetwork wide(topo_, NetworkConfig{.grouping_factor = 4}, stats2);
  TcdmResp beat;
  beat.dst_tile = 3;
  beat.num_words = 4;
  beat.data = {1, 2, 3, 4, 0, 0, 0, 0};
  CollectSink sink;
  wide.send_rsp(0, beat, 0);
  for (Cycle c = 0; c <= 3; ++c) wide.cycle(c, sink);
  ASSERT_EQ(sink.items.size(), 1u);
  EXPECT_EQ(sink.items[0].rsp.num_words, 4u);
  EXPECT_EQ(sink.items[0].rsp.data[3], 4u);
}

TEST_F(NetworkTest, BusyReflectsInFlightTraffic) {
  EXPECT_FALSE(net_.busy());
  net_.send_req(0, 1, make_req(0), 0);
  EXPECT_TRUE(net_.busy());
  net_.cycle(0, sink_);
  net_.cycle(1, sink_);
  (void)net_.slave_pop(1, topo_.class_of(0, 1));
  EXPECT_FALSE(net_.busy());
}

}  // namespace
}  // namespace tcdm
