// Tests for the min/max vector ops and the ML-flavored kernels (ReLU,
// MaxPool2x2): golden-model verification across burst configs, bit-exact
// results (max is exact arithmetic), disasm coverage, and the headline
// property that MaxPool's stride-2 loads only benefit from the
// strided-burst extension, never from the paper's VLE-keyed design.
#include <gtest/gtest.h>

#include "src/isa/disasm.hpp"
#include "src/kernels/golden.hpp"
#include "src/kernels/maxpool.hpp"
#include "src/kernels/relu.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

using test::mp4_config;
using test::run_capped;

// ---- vfmax/vfmin semantics through a tiny program ----

TEST(MinMaxOps, VfmaxVfminComputeLaneWise) {
  Cluster cluster(ClusterConfig::mp4spatz4());
  const std::vector<float> a{-1.0f, 2.0f, -3.5f, 4.25f};
  const std::vector<float> b{0.5f, -2.0f, -3.0f, 9.0f};
  cluster.write_block_f32(0, a);
  cluster.write_block_f32(64, b);

  ProgramBuilder pb("minmax");
  Label work = pb.make_label();
  Label out = pb.make_label();
  pb.beqz(a0, work);  // only hart 0 computes
  pb.j(out);
  pb.bind(work);
  pb.li(t0, 4);
  pb.vsetvli(t1, t0, Lmul::m1);
  pb.li(t2, 0);
  pb.vle32(VReg{1}, t2);
  pb.li(t2, 64);
  pb.vle32(VReg{2}, t2);
  pb.vfmax_vv(VReg{3}, VReg{1}, VReg{2});
  pb.vfmin_vv(VReg{4}, VReg{1}, VReg{2});
  pb.li(t2, 128);
  pb.vse32(VReg{3}, t2);
  pb.li(t2, 192);
  pb.vse32(VReg{4}, t2);
  pb.bind(out);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  ASSERT_TRUE(cluster.run(100'000).all_halted);

  const std::vector<float> mx = cluster.read_block_f32(128, 4);
  const std::vector<float> mn = cluster.read_block_f32(192, 4);
  for (unsigned i = 0; i < 4; ++i) {
    EXPECT_EQ(mx[i], std::max(a[i], b[i])) << i;
    EXPECT_EQ(mn[i], std::min(a[i], b[i])) << i;
  }
}

TEST(MinMaxOps, DisassembleCleanly) {
  ProgramBuilder pb("d");
  pb.vfmax_vv(VReg{3}, VReg{1}, VReg{2});
  pb.vfmin_vv(VReg{4}, VReg{1}, VReg{2});
  pb.vfmax_vf(VReg{5}, ft0, VReg{1});
  pb.halt();
  const Program p = pb.build();
  EXPECT_NE(disasm(p.at(0)).find("vfmax.vv"), std::string::npos);
  EXPECT_NE(disasm(p.at(1)).find("vfmin.vv"), std::string::npos);
  EXPECT_NE(disasm(p.at(2)).find("vfmax.vf"), std::string::npos);
}

// ---- golden references ----

TEST(MlGolden, ReluAndMaxpoolBasics) {
  const std::vector<float> x{-1.0f, 0.0f, 2.5f, -0.25f};
  std::vector<float> y(4);
  golden::relu(x, y);
  EXPECT_EQ(y, (std::vector<float>{0.0f, 0.0f, 2.5f, 0.0f}));

  const std::vector<float> img{1, 5, 2, 0,   //
                               3, 4, 1, 9,   //
                               0, 0, 7, 2,   //
                               8, 1, 3, 3};
  std::vector<float> out(4);
  golden::maxpool2x2(img, out, 4, 4);
  EXPECT_EQ(out, (std::vector<float>{5, 9, 8, 7}));
}

// ---- kernels across configurations ----

using MlKernelOnMp4 = test::BurstSweepTest;

TEST_P(MlKernelOnMp4, ReluVerifies) {
  ReluKernel k(2048);
  const KernelMetrics m = run_capped(config(), k);
  EXPECT_KERNEL_OK(m);
  EXPECT_AI_NEAR(m, 0.125, 0.02);
}

TEST_P(MlKernelOnMp4, MaxPoolVerifies) {
  MaxPoolKernel k(16, 48);
  const KernelMetrics m = run_capped(config(), k);
  EXPECT_KERNEL_OK(m);
  EXPECT_AI_NEAR(m, 0.15, 0.03);
}

TCDM_INSTANTIATE_BURST_SWEEP(MlKernelOnMp4);

TEST(MlKernelArgs, RejectOddShapes) {
  EXPECT_THROW(MaxPoolKernel(7, 8), std::invalid_argument);
  EXPECT_THROW(MaxPoolKernel(8, 7), std::invalid_argument);
  EXPECT_THROW(MaxPoolKernel(0, 8), std::invalid_argument);
}

// ---- performance directions ----

TEST(MlKernelPerf, BurstSpeedsUpRelu) {
  ReluKernel k1(4096), k2(4096);
  const KernelMetrics base = run_capped(mp4_config(), k1);
  const KernelMetrics gf4 = run_capped(mp4_config(4), k2);
  ASSERT_KERNEL_OK(base);
  ASSERT_KERNEL_OK(gf4);
  // AI 0.125: deeply memory-bound, loads are half the traffic.
  EXPECT_GT(base.cycles, 1.3 * gf4.cycles);
}

TEST(MlKernelPerf, MaxPoolNeedsTheStridedExtension) {
  // All loads are stride-2 vlse32: the paper's VLE-keyed bursts do nothing;
  // the strided-burst extension coalesces them pairwise.
  MaxPoolKernel k1(32, 64), k2(32, 64), k3(32, 64);
  const KernelMetrics base = run_capped(mp4_config(), k1);
  const KernelMetrics gf4 = run_capped(mp4_config(4), k2);
  const KernelMetrics ext = run_capped(mp4_config(4).with_strided_bursts(), k3);
  ASSERT_KERNEL_OK(base);
  ASSERT_KERNEL_OK(gf4);
  ASSERT_KERNEL_OK(ext);
  const double plain_gain = static_cast<double>(base.cycles) / gf4.cycles;
  const double ext_gain = static_cast<double>(base.cycles) / ext.cycles;
  EXPECT_LT(plain_gain, 1.1);      // VLE-keyed bursts barely move it
  EXPECT_GT(ext_gain, plain_gain + 0.1);  // the extension does
}

}  // namespace
}  // namespace tcdm
