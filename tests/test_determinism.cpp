// Determinism regression suite: the simulator is a pure function of
// (configuration, kernel, seed). Every run of the same workload must
// produce identical cycle counts AND identical derived metrics, on every
// configuration class we ship — this is the guard rail future
// parallelization or event-reordering refactors have to pass. The
// ThreadedStepping tests extend the contract across `SimOptions`: a
// tile-parallel run at any sim_threads count must be bit-identical to the
// serial run — same metrics, same statistics registry, same final memory.
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "src/cluster/cluster.hpp"
#include "src/kernels/dotp.hpp"
#include "src/kernels/gemv.hpp"
#include "src/kernels/probes.hpp"
#include "src/kernels/stencil.hpp"
#include "src/kernels/trace_replay.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

using test::mp4_config;
using test::run_capped;
using test::run_unverified;
using test::tiny_config;

/// Every numeric field of KernelMetrics must match bit for bit — a run is
/// either identical or it is not; there is no tolerance here. Plain == on
/// the doubles gives exactly that (a 1-ULP accumulation-order drift fails).
void expect_identical(const KernelMetrics& a, const KernelMetrics& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.fpu_util, b.fpu_util);
  EXPECT_EQ(a.flops_per_cycle, b.flops_per_cycle);
  EXPECT_EQ(a.gflops_ss, b.gflops_ss);
  EXPECT_EQ(a.gflops_tt, b.gflops_tt);
  EXPECT_EQ(a.bw_bytes_per_cycle, b.bw_bytes_per_cycle);
  EXPECT_EQ(a.bw_per_core, b.bw_per_core);
  EXPECT_EQ(a.arithmetic_intensity, b.arithmetic_intensity);
  EXPECT_EQ(a.verified, b.verified);
  EXPECT_EQ(a.timed_out, b.timed_out);
}

using DeterminismOnConfig = test::BurstSweepTest;

TEST_P(DeterminismOnConfig, SeededDotpRepeatsExactly) {
  DotpKernel k1(1024, /*seed=*/9), k2(1024, /*seed=*/9);
  const KernelMetrics a = run_capped(config(), k1);
  const KernelMetrics b = run_capped(config(), k2);
  ASSERT_KERNEL_OK(a);
  expect_identical(a, b);
}

TEST_P(DeterminismOnConfig, SeededJacobiRepeatsExactly) {
  Jacobi2dKernel k1(10, 34, /*seed=*/21), k2(10, 34, /*seed=*/21);
  const KernelMetrics a = run_capped(config(), k1);
  const KernelMetrics b = run_capped(config(), k2);
  ASSERT_KERNEL_OK(a);
  expect_identical(a, b);
}

TEST_P(DeterminismOnConfig, RandomProbeRepeatsExactly) {
  // The probe's access pattern is itself RNG-driven: same seed, same
  // traffic, same contention history, same cycle count.
  RandomProbeKernel k1(96, RandomProbeKernel::Pattern::kUniform, /*seed=*/5);
  RandomProbeKernel k2(96, RandomProbeKernel::Pattern::kUniform, /*seed=*/5);
  const KernelMetrics a = run_unverified(config(), k1);
  const KernelMetrics b = run_unverified(config(), k2);
  EXPECT_FALSE(a.timed_out);
  expect_identical(a, b);
}

TEST_P(DeterminismOnConfig, DifferentSeedsChangeTheProbeRun) {
  // Sanity check on the guard itself: the seed must actually matter,
  // otherwise the repeat tests above prove nothing.
  RandomProbeKernel k1(96, RandomProbeKernel::Pattern::kUniform, /*seed=*/5);
  RandomProbeKernel k2(96, RandomProbeKernel::Pattern::kUniform, /*seed=*/6);
  const KernelMetrics a = run_unverified(config(), k1);
  const KernelMetrics b = run_unverified(config(), k2);
  EXPECT_NE(a.cycles, b.cycles);
}

TCDM_INSTANTIATE_BURST_SWEEP(DeterminismOnConfig);

TEST(Determinism, ExtensionConfigsRepeatExactly) {
  for (const auto& cfg : {mp4_config(4).with_strided_bursts(),
                          mp4_config(4).with_store_bursts(4)}) {
    MemcpyKernel k1(1024, /*seed=*/6), k2(1024, /*seed=*/6);
    const KernelMetrics a = run_capped(cfg, k1);
    const KernelMetrics b = run_capped(cfg, k2);
    ASSERT_KERNEL_OK(a);
    expect_identical(a, b);
  }
}

/// Compare two clusters word for word over the whole TCDM address space.
void expect_identical_memory(const Cluster& a, const Cluster& b) {
  const AddressMap& map = a.map();
  ASSERT_EQ(map.total_bytes(), b.map().total_bytes());
  unsigned mismatches = 0;
  for (Addr addr = 0; addr < map.total_bytes(); addr += kWordBytes) {
    if (a.read_word(addr) != b.read_word(addr)) {
      ++mismatches;
      EXPECT_EQ(a.read_word(addr), b.read_word(addr)) << "addr=" << addr;
      if (mismatches > 4) FAIL() << "too many memory mismatches; stopping";
    }
  }
}

/// Run the same seeded kernel serially and at sim_threads = 4 and demand
/// bit-identical outcomes: metrics, every statistics counter, and the full
/// final memory image.
template <typename KernelT, typename... Args>
void expect_thread_count_invariant(const ClusterConfig& cfg, bool verify,
                                   Args&&... kernel_args) {
  KernelT k_serial(kernel_args...), k_par(kernel_args...);
  RunnerOptions opts;
  opts.verify = verify;
  opts.max_cycles = 5'000'000;

  Cluster serial(cfg, SimOptions{.sim_threads = 1});
  const KernelMetrics a = run_kernel_on(serial, k_serial, opts);

  Cluster parallel(cfg, SimOptions{.sim_threads = 4});
  ASSERT_GT(parallel.sim_threads(), 1u);
  const KernelMetrics b = run_kernel_on(parallel, k_par, opts);

  EXPECT_FALSE(a.timed_out);
  expect_identical(a, b);
  // The statistics registries must agree on every counter — names and
  // bit-exact values (shared network counters commit in tile order at any
  // thread count).
  EXPECT_EQ(serial.stats().snapshot(), parallel.stats().snapshot());
  expect_identical_memory(serial, parallel);
}

using ThreadedSteppingOnConfig = test::BurstSweepTest;

TEST_P(ThreadedSteppingOnConfig, DotpMatchesSerialBitForBit) {
  expect_thread_count_invariant<DotpKernel>(config(), /*verify=*/true, 1024u,
                                            /*seed=*/9);
}

TEST_P(ThreadedSteppingOnConfig, RandomProbeMatchesSerialBitForBit) {
  // The probe stresses the contended remote paths (wait-list registration,
  // burst beats, store acks) where commit ordering could diverge.
  expect_thread_count_invariant<RandomProbeKernel>(
      config(), /*verify=*/false, 96u, RandomProbeKernel::Pattern::kUniform,
      /*seed=*/5);
}

TCDM_INSTANTIATE_BURST_SWEEP(ThreadedSteppingOnConfig);

TEST(ThreadedStepping, ThreadCountsTwoThroughEightAgree) {
  // Beyond 1-vs-4: every thread count (including one above the tile count,
  // which clamps) must yield the same run.
  const ClusterConfig cfg = mp4_config(4);
  KernelMetrics base;
  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    DotpKernel k(512, /*seed=*/3);
    const KernelMetrics m =
        test::run_capped(cfg, k, 5'000'000, threads);
    ASSERT_KERNEL_OK(m);
    if (threads == 1) {
      base = m;
    } else {
      expect_identical(base, m);
    }
  }
}

TEST(Determinism, TinyClusterScalarProgramRepeatsExactly) {
  GemvKernel k1(8, 16, 4), k2(8, 16, 4);
  const KernelMetrics a = run_capped(tiny_config(), k1);
  const KernelMetrics b = run_capped(tiny_config(), k2);
  ASSERT_KERNEL_OK(a);
  expect_identical(a, b);
}

TEST(Determinism, SyntheticTraceGenerationIsSeedStable) {
  const ClusterConfig cfg = mp4_config();
  TraceConfig tc;
  tc.entries_per_hart = 48;
  tc.write_fraction = 0.25;
  tc.seed = 17;
  const std::vector<TraceEntry> t1 = synthetic_trace(cfg, tc);
  const std::vector<TraceEntry> t2 = synthetic_trace(cfg, tc);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].hart, t2[i].hart) << i;
    EXPECT_EQ(t1[i].write, t2[i].write) << i;
    EXPECT_EQ(t1[i].addr, t2[i].addr) << i;
    EXPECT_EQ(t1[i].len, t2[i].len) << i;
  }
}

TEST(Determinism, TraceReplayRepeatsExactly) {
  const ClusterConfig cfg = mp4_config(4);
  TraceConfig tc;
  tc.entries_per_hart = 48;
  tc.seed = 17;
  const std::vector<TraceEntry> trace = synthetic_trace(cfg, tc);
  TraceReplayKernel k1(trace), k2(trace);
  const KernelMetrics a = run_unverified(cfg, k1);
  const KernelMetrics b = run_unverified(cfg, k2);
  EXPECT_FALSE(a.timed_out);
  expect_identical(a, b);
}

}  // namespace
}  // namespace tcdm
