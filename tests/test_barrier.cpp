// Barrier kinds (central / tree / butterfly): release-delay models,
// generation protocol, the named over-arrival contract error, factory and
// name round trips — and the cross-kind cluster guarantee: every kind runs
// every kernel to the same verified result, with the central kind
// bit-identical to the pre-refactor single-barrier behavior (the default
// config carries kind "central", so all recorded baselines are unchanged).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/cluster/barrier.hpp"
#include "src/cluster/cluster.hpp"
#include "src/cluster/kernel_runner.hpp"
#include "src/kernels/axpy.hpp"
#include "src/kernels/dotp.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

using test::mp4_config;

// ------------------------------------------------------- names & factory ----

TEST(BarrierKindNames, RoundTrip) {
  for (const BarrierKind kind :
       {BarrierKind::kCentral, BarrierKind::kTree, BarrierKind::kButterfly}) {
    EXPECT_EQ(barrier_kind_from_name(barrier_kind_name(kind)), kind);
  }
  EXPECT_STREQ(barrier_kind_name(BarrierKind::kCentral), "central");
  EXPECT_STREQ(barrier_kind_name(BarrierKind::kTree), "tree");
  EXPECT_STREQ(barrier_kind_name(BarrierKind::kButterfly), "butterfly");
  EXPECT_THROW((void)barrier_kind_from_name("ring"), std::invalid_argument);
}

TEST(BarrierFactory, BuildsTheRequestedKind) {
  const auto central = make_barrier(BarrierKind::kCentral, 8, 5);
  const auto tree = make_barrier(BarrierKind::kTree, 8, 5, 4);
  const auto butterfly = make_barrier(BarrierKind::kButterfly, 8, 5);
  EXPECT_EQ(central->kind(), BarrierKind::kCentral);
  EXPECT_EQ(tree->kind(), BarrierKind::kTree);
  EXPECT_EQ(butterfly->kind(), BarrierKind::kButterfly);
  EXPECT_EQ(dynamic_cast<TreeBarrier&>(*tree).radix(), 4u);
}

TEST(BarrierFactory, TreeRejectsRadixBelowTwo) {
  EXPECT_THROW((void)make_barrier(BarrierKind::kTree, 8, 5, 1),
               std::invalid_argument);
}

// -------------------------------------------------------- release delays ----

/// Drive `n` arrivals at `now` and report when the release lands.
Cycle release_cycle(Barrier& b, unsigned n, Cycle now) {
  for (unsigned h = 0; h < n; ++h) b.arrive(h, now);
  EXPECT_TRUE(b.release_pending());
  return b.release_at();
}

TEST(BarrierDelay, CentralIsTheConfiguredLatencyRegardlessOfSize) {
  for (unsigned n : {2u, 16u, 256u}) {
    CentralBarrier b(n, 7);
    EXPECT_EQ(release_cycle(b, n, 100), 107u) << n;
  }
}

TEST(BarrierDelay, TreeIsTwoTraversalsOfTheReductionTree) {
  // 16 members radix 2: 4 levels, up + down at link latency 3 -> 24.
  TreeBarrier r2(16, 3, 2);
  EXPECT_EQ(r2.levels(), 4u);
  EXPECT_EQ(release_cycle(r2, 16, 100), 124u);
  // Radix 4 halves the level count: ceil(log4(16)) = 2 -> 12.
  TreeBarrier r4(16, 3, 4);
  EXPECT_EQ(r4.levels(), 2u);
  EXPECT_EQ(release_cycle(r4, 16, 100), 112u);
  // Non-power sizes round up: 5 members radix 2 -> 3 levels.
  EXPECT_EQ(TreeBarrier(5, 1, 2).levels(), 3u);
}

TEST(BarrierDelay, ButterflyIsOneDisseminationPass) {
  // ceil(log2(16)) = 4 stages at link latency 3 -> 12: half the tree cost.
  ButterflyBarrier b(16, 3);
  EXPECT_EQ(b.stages(), 4u);
  EXPECT_EQ(release_cycle(b, 16, 100), 112u);
}

// --------------------------------------------------- generation protocol ----

TEST(BarrierProtocol, GenerationAdvancesOnReleaseAndCountsClear) {
  CentralBarrier b(4, 2);
  EXPECT_EQ(b.generation(), 0u);
  for (unsigned h = 0; h < 4; ++h) b.arrive(h, 10);
  b.cycle(11);  // before release_at: nothing happens
  EXPECT_EQ(b.generation(), 0u);
  EXPECT_EQ(b.arrived(), 4u);
  b.cycle(12);  // at release_at: release, clear, next generation
  EXPECT_EQ(b.generation(), 1u);
  EXPECT_EQ(b.arrived(), 0u);
  EXPECT_FALSE(b.release_pending());
}

TEST(BarrierProtocol, OverArrivalNamesTheOffendingHart) {
  CentralBarrier b(2, 2);
  b.arrive(0, 5);
  b.arrive(1, 5);
  try {
    b.arrive(7, 6);  // all members present, release not yet broadcast
    FAIL() << "expected BarrierContractError";
  } catch (const BarrierContractError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("hart=7"), std::string::npos) << what;
    EXPECT_NE(what.find("central"), std::string::npos) << what;
    EXPECT_NE(what.find("generation 0"), std::string::npos) << what;
  }
}

TEST(BarrierProtocol, ResetRestoresTheConstructedState) {
  ButterflyBarrier b(4, 3);
  for (unsigned h = 0; h < 4; ++h) b.arrive(h, 10);
  b.cycle(b.release_at());
  ASSERT_EQ(b.generation(), 1u);
  b.arrive(0, 20);  // partial arrival in generation 1
  b.reset();
  EXPECT_EQ(b.generation(), 0u);
  EXPECT_EQ(b.arrived(), 0u);
  EXPECT_FALSE(b.release_pending());
  EXPECT_EQ(b.release_at(), 0u);
}

// --------------------------------------------------- cross-kind clusters ----

/// All barrier kinds run the same kernels to the same verified answer; the
/// kinds only move the end-of-phase release timing.
TEST(BarrierCluster, EveryKindVerifiesEveryKernel) {
  for (const BarrierKind kind :
       {BarrierKind::kCentral, BarrierKind::kTree, BarrierKind::kButterfly}) {
    ClusterConfig cfg = mp4_config(4);
    cfg.barrier_kind = kind;
    DotpKernel dotp(2048);
    EXPECT_KERNEL_OK(test::run_capped(cfg, dotp)) << barrier_kind_name(kind);
    AxpyKernel axpy(768, 1.25f, 11);
    EXPECT_KERNEL_OK(test::run_capped(cfg, axpy)) << barrier_kind_name(kind);
  }
}

/// The default config's central kind is the pre-refactor barrier: spelling
/// the default explicitly cannot change a single cycle.
TEST(BarrierCluster, ExplicitCentralIsBitIdenticalToDefault) {
  const ClusterConfig base = mp4_config(4);
  ClusterConfig central = base;
  central.barrier_kind = BarrierKind::kCentral;
  DotpKernel k1(2048);
  DotpKernel k2(2048);
  const KernelMetrics a = test::run_capped(base, k1);
  const KernelMetrics b = test::run_capped(central, k2);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.flops, b.flops);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.bw_bytes_per_cycle, b.bw_bytes_per_cycle);
}

/// The config round-trips the kind and radix — and omits them at their
/// defaults, keeping pre-existing serializations byte-identical.
TEST(BarrierCluster, ConfigRoundTripsKindOffDefaultOnly) {
  ClusterConfig cfg = mp4_config(0);
  const std::string plain = cfg.to_json().dump();
  EXPECT_EQ(plain.find("barrier_kind"), std::string::npos);
  EXPECT_EQ(plain.find("barrier_radix"), std::string::npos);

  cfg.barrier_kind = BarrierKind::kTree;
  cfg.barrier_radix = 4;
  const ClusterConfig back =
      ClusterConfig::from_json(Json::parse(cfg.to_json().dump()));
  EXPECT_EQ(back.barrier_kind, BarrierKind::kTree);
  EXPECT_EQ(back.barrier_radix, 4u);
}

}  // namespace
}  // namespace tcdm
