// Burst machinery unit tests: Burst Sender coalescing rules and table
// bookkeeping; Burst Manager split/merge with GF segments and backpressure.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/burst/burst_manager.hpp"
#include "src/burst/burst_sender.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

// ---------------------------------------------------------------- manager --

class BurstManagerTest : public ::testing::Test {
 protected:
  BurstManagerTest()
      : map_(test::small_address_map()),
        bm_(BurstManagerConfig{4, 4, 8}, map_, 1),
        banks_(test::patterned_banks()) {}

  /// Byte address of (bank-in-tile, row) for tile 1.
  Addr addr_of(unsigned bank_in_tile, unsigned row) const {
    return (row * 16 + 4 + bank_in_tile) * kWordBytes;  // tile 1 = banks 4..7
  }

  AddressMap map_;
  BurstManager bm_;
  std::vector<SpmBank> banks_;
};

TEST_F(BurstManagerTest, SplitsBurstAcrossBanksAndMergesOneBeat) {
  TcdmReq req;
  req.addr = addr_of(0, 5);
  req.len = 4;
  req.src_tile = 3;
  req.tag.owner = ReqOwner::kBurst;
  req.tag.id = 7;
  ASSERT_TRUE(bm_.try_accept(req));
  bm_.issue(banks_);
  // All four banks received one request in the same cycle.
  for (unsigned b = 0; b < 4; ++b) {
    banks_[b].cycle();
    ASSERT_TRUE(banks_[b].resp_ready());
    const BankResp r = banks_[b].resp_pop();
    EXPECT_EQ(r.route.kind, RouteKind::kBurstSegment);
    bm_.fill(r.route, r.data);
  }
  const auto slot = bm_.next_ready_slot();
  ASSERT_TRUE(slot.has_value());
  EXPECT_EQ(bm_.slot_requester(*slot), 3u);
  const TcdmResp beat = bm_.take_beat(*slot);
  EXPECT_EQ(beat.num_words, 4u);
  EXPECT_EQ(beat.tag.id, 7u);
  EXPECT_EQ(beat.tag.word_offset, 0u);
  for (unsigned w = 0; w < 4; ++w) EXPECT_EQ(beat.data[w], 100 * w + 5);
  EXPECT_FALSE(bm_.busy());
}

TEST_F(BurstManagerTest, Gf2ProducesTwoBeats) {
  BurstManager bm2(BurstManagerConfig{2, 4, 8}, map_, 1);
  TcdmReq req;
  req.addr = addr_of(0, 9);
  req.len = 4;
  req.src_tile = 2;
  req.tag.id = 1;
  ASSERT_TRUE(bm2.try_accept(req));
  bm2.issue(banks_);
  for (unsigned b = 0; b < 4; ++b) {
    banks_[b].cycle();
    const BankResp r = banks_[b].resp_pop();
    bm2.fill(r.route, r.data);
  }
  unsigned beats = 0;
  unsigned words = 0;
  while (const auto s = bm2.next_ready_slot()) {
    const TcdmResp beat = bm2.take_beat(*s);
    EXPECT_EQ(beat.num_words, 2u);
    words += beat.num_words;
    ++beats;
  }
  EXPECT_EQ(beats, 2u);
  EXPECT_EQ(words, 4u);
}

TEST_F(BurstManagerTest, UnalignedBurstSpansSegments) {
  // Burst of 3 starting at bank 1 with GF2: segments [1], [2,3].
  BurstManager bm2(BurstManagerConfig{2, 4, 8}, map_, 1);
  TcdmReq req;
  req.addr = addr_of(1, 0);
  req.len = 3;
  req.src_tile = 0;
  ASSERT_TRUE(bm2.try_accept(req));
  bm2.issue(banks_);
  for (unsigned b = 1; b <= 3; ++b) {
    banks_[b].cycle();
    const BankResp r = banks_[b].resp_pop();
    bm2.fill(r.route, r.data);
  }
  std::vector<unsigned> beat_sizes;
  while (const auto s = bm2.next_ready_slot()) {
    beat_sizes.push_back(bm2.take_beat(*s).num_words);
  }
  std::sort(beat_sizes.begin(), beat_sizes.end());
  EXPECT_EQ(beat_sizes, (std::vector<unsigned>{1, 2}));
}

TEST_F(BurstManagerTest, FifoBackpressureWhenFull) {
  TcdmReq req;
  req.addr = addr_of(0, 0);
  req.len = 4;
  for (unsigned i = 0; i < 4; ++i) EXPECT_TRUE(bm_.try_accept(req));
  EXPECT_FALSE(bm_.try_accept(req));  // FIFO depth 4
}

TEST_F(BurstManagerTest, StalledBankRetriesNextCycle) {
  // Pre-fill bank 2's input queue so the burst cannot fully issue.
  BankReq filler;
  filler.row = 0;
  ASSERT_TRUE(banks_[2].try_push(filler));
  ASSERT_TRUE(banks_[2].try_push(filler));
  TcdmReq req;
  req.addr = addr_of(0, 1);
  req.len = 4;
  ASSERT_TRUE(bm_.try_accept(req));
  bm_.issue(banks_);    // words 0,1 issue; word 2 blocked
  EXPECT_TRUE(bm_.busy());
  banks_[2].cycle();    // frees a slot
  (void)banks_[2].resp_pop();
  bm_.issue(banks_);    // words 2,3 issue now
  banks_[2].cycle();
  (void)banks_[2].resp_pop();  // filler
  // The burst's four bank requests eventually all arrive.
  unsigned burst_words = 0;
  for (unsigned b = 0; b < 4; ++b) {
    for (unsigned k = 0; k < 4; ++k) {
      banks_[b].cycle();
      if (banks_[b].resp_ready()) {
        const BankResp r = banks_[b].resp_pop();
        if (r.route.kind == RouteKind::kBurstSegment) {
          bm_.fill(r.route, r.data);
          ++burst_words;
        }
      }
    }
  }
  EXPECT_EQ(burst_words, 4u);
  EXPECT_TRUE(bm_.next_ready_slot().has_value());
}

// ----------------------------------------------------------------- sender --

class FakeTile final : public TileServices {
 public:
  FakeTile(StatsRegistry& stats)
      : map_(test::small_address_map()),
        topo_(test::flat4_topology()),
        // Deep master FIFOs: these tests dispatch without running the
        // network cycle that would normally drain the ports.
        net_(topo_, NetworkConfig{.master_extra_slots = 8}, stats) {}

  bool try_local_push(unsigned bank, const BankReq& req) override {
    local_pushes.push_back({bank, req});
    return accept_local;
  }
  HierNetwork& net() override { return net_; }
  const AddressMap& map() const override { return map_; }
  TileId tile_id() const override { return 0; }

  /// Cross-tile network effects (wait-list registration, shared counters)
  /// are staged per source tile for tile-parallel stepping; commit them the
  /// way the cluster does at a phase boundary before inspecting stats.
  void commit_network() { net_.commit_deferred(); }

  std::vector<std::pair<unsigned, BankReq>> local_pushes;
  bool accept_local = true;
  AddressMap map_;
  Topology topo_;
  HierNetwork net_;
};

BeatRequest unit_beat(Addr base, unsigned n, bool load = true) {
  BeatRequest b;
  b.unit_stride_load = load;
  for (unsigned i = 0; i < n; ++i) {
    WordRequest w;
    w.addr = base + i * kWordBytes;
    w.port = static_cast<std::uint8_t>(i % 4);
    w.rob_slot = static_cast<std::uint16_t>(i);
    w.write = !load;
    b.words.push_back(w);
  }
  return b;
}

TEST(BurstSender, CoalescesRemoteUnitStrideLoad) {
  StatsRegistry stats;
  FakeTile tile(stats);
  BurstSender sender({.enable_bursts = true, .max_burst_len = 4}, 4);
  // Tile 1's words: addresses 16..31 bytes (banks 4..7).
  ASSERT_TRUE(sender.accept_beat(unit_beat(16, 4), tile.map(), 0));
  sender.dispatch(0, tile);
  EXPECT_TRUE(tile.local_pushes.empty());
  tile.commit_network();
  EXPECT_EQ(stats.value("network.req_sent"), 1.0);   // one burst request
  EXPECT_EQ(stats.value("network.req_words"), 4.0);  // carrying 4 words
  // Burst table resolves ports/slots by word offset.
  EXPECT_EQ(sender.lookup(0, 2).port, 2u);
  EXPECT_EQ(sender.lookup(0, 2).rob_slot, 2u);
  sender.note_resolved(0, 4);
  EXPECT_FALSE(sender.busy());
}

TEST(BurstSender, LocalBeatsBypassTheNetwork) {
  StatsRegistry stats;
  FakeTile tile(stats);
  BurstSender sender({.enable_bursts = true, .max_burst_len = 4}, 4);
  ASSERT_TRUE(sender.accept_beat(unit_beat(0, 4), tile.map(), 0));  // tile 0
  sender.dispatch(0, tile);
  EXPECT_EQ(tile.local_pushes.size(), 4u);
  EXPECT_EQ(stats.value("network.req_sent"), 0.0);
}

TEST(BurstSender, DisabledModeSendsNarrow) {
  StatsRegistry stats;
  FakeTile tile(stats);
  BurstSender sender({.enable_bursts = false}, 4);
  ASSERT_TRUE(sender.accept_beat(unit_beat(16, 4), tile.map(), 0));
  sender.dispatch(0, tile);   // class port limits to 1/cycle
  sender.dispatch(1, tile);
  sender.dispatch(2, tile);
  sender.dispatch(3, tile);
  tile.commit_network();
  EXPECT_EQ(stats.value("network.req_sent"), 4.0);  // serialized narrow words
  EXPECT_EQ(stats.value("network.req_words"), 4.0);
}

TEST(BurstSender, StoresNeverBurst) {
  StatsRegistry stats;
  FakeTile tile(stats);
  BurstSender sender({.enable_bursts = true, .max_burst_len = 4}, 4);
  BeatRequest b = unit_beat(16, 4, /*load=*/false);
  b.unit_stride_load = false;  // stores are not burst-eligible
  ASSERT_TRUE(sender.accept_beat(b, tile.map(), 0));
  for (Cycle c = 0; c < 4; ++c) sender.dispatch(c, tile);
  tile.commit_network();
  EXPECT_EQ(stats.value("network.req_sent"), 4.0);
}

TEST(BurstSender, SplitsAtTileBoundary) {
  StatsRegistry stats;
  FakeTile tile(stats);
  BurstSender sender({.enable_bursts = true, .max_burst_len = 4}, 4);
  // Words 6..9 span tile 1 (banks 6,7) and tile 2 (banks 8,9).
  ASSERT_TRUE(sender.accept_beat(unit_beat(24, 4), tile.map(), 0));
  sender.dispatch(0, tile);
  // Two bursts of two words each; distinct classes -> both sent in cycle 0.
  tile.commit_network();
  EXPECT_EQ(stats.value("network.req_sent"), 2.0);
  EXPECT_EQ(stats.value("network.req_words"), 4.0);
}

TEST(BurstSender, ExtendsTailAcrossBeats) {
  StatsRegistry stats;
  FakeTile tile(stats);
  // Allow 8-word bursts (banks_per_tile is 4 in FakeTile, so use a map with
  // 8 banks/tile to permit extension).
  BurstSender sender({.enable_bursts = true, .max_burst_len = 8}, 4);
  AddressMap map8(16, 8, 64);
  // Tile 1 = banks 8..15 -> words 8..15. Two contiguous 4-word beats.
  ASSERT_TRUE(sender.accept_beat(unit_beat(32, 4), map8, 0));
  ASSERT_TRUE(sender.accept_beat(unit_beat(48, 4), map8, 0));
  sender.dispatch(0, tile);  // FakeTile's own map differs; only count sends
  tile.commit_network();
  EXPECT_EQ(stats.value("network.req_sent"), 1.0);
  EXPECT_EQ(stats.value("network.req_words"), 8.0);
  EXPECT_EQ(sender.lookup(0, 7).rob_slot, 3u);  // second beat's slots appended
}

TEST(BurstSender, TableExhaustionDegradesToNarrow) {
  StatsRegistry stats;
  FakeTile tile(stats);
  BurstSender sender({.enable_bursts = true, .max_burst_len = 4, .table_size = 1,
                      .staging_beats = 8},
                     4);
  ASSERT_TRUE(sender.accept_beat(unit_beat(16, 4), tile.map(), 0));  // takes the entry
  ASSERT_TRUE(sender.accept_beat(unit_beat(32, 4), tile.map(), 0));  // degrades
  for (Cycle c = 0; c < 8; ++c) sender.dispatch(c, tile);
  tile.commit_network();
  EXPECT_EQ(stats.value("network.req_sent"), 5.0);  // 1 burst + 4 narrow
}

}  // namespace
}  // namespace tcdm
