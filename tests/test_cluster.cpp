// End-to-end cluster tests: scalar programs, vector memory, barriers,
// multi-hart interaction — on small custom configurations and the paper's
// MP4Spatz4 preset, baseline and burst.
#include <gtest/gtest.h>

#include "src/cluster/cluster.hpp"
#include "src/isa/program.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

/// Tiny 2-tile cluster for fast directed tests.
using test::tiny_config;

TEST(Cluster, ScalarArithmeticProgram) {
  Cluster cluster(tiny_config());
  ProgramBuilder pb("alu");
  pb.li(t0, 21);
  pb.slli(t1, t0, 1);     // 42
  pb.addi(t2, t1, 58);    // 100
  pb.li(t3, 400);
  pb.li(a2, 0x40);        // result address
  pb.add(t3, t3, t2);     // 500
  pb.sw(t3, a2, 0);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  const RunOutcome out = cluster.run(20'000);
  EXPECT_TRUE(out.all_halted);
  EXPECT_EQ(cluster.read_word(0x40), 500u);
}

TEST(Cluster, ScalarLoadStoreRoundTrip) {
  Cluster cluster(tiny_config());
  cluster.write_word(0x10, 1234);
  ProgramBuilder pb("ldst");
  Label skip = pb.make_label();
  pb.bnez(a0, skip);  // only hart 0
  pb.li(a2, 0x10);
  pb.lw(t0, a2, 0);
  pb.addi(t0, t0, 1);
  pb.sw(t0, a2, 4);
  pb.bind(skip);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
  EXPECT_EQ(cluster.read_word(0x14), 1235u);
}

TEST(Cluster, RemoteScalarAccess) {
  // Hart 0 stores into a word that lives in tile 1 (bank 4..7 words).
  Cluster cluster(tiny_config());
  const Addr remote = 4 * kWordBytes;  // word 4 -> bank 4 -> tile 1
  ASSERT_EQ(cluster.map().tile_of(remote), 1u);
  ProgramBuilder pb("remote");
  Label skip = pb.make_label();
  pb.bnez(a0, skip);
  pb.li(a2, static_cast<std::int32_t>(remote));
  pb.li(t0, 77);
  pb.sw(t0, a2, 0);
  pb.lw(t1, a2, 0);
  pb.addi(t1, t1, 1);
  pb.sw(t1, a2, 0);
  pb.bind(skip);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
  EXPECT_EQ(cluster.read_word(remote), 78u);
}

TEST(Cluster, AmoAddAccumulatesAcrossHarts) {
  Cluster cluster(tiny_config());
  const Addr counter = 0x20;
  ProgramBuilder pb("amo");
  pb.li(a2, static_cast<std::int32_t>(counter));
  pb.addi(t0, a0, 1);  // hart 0 adds 1, hart 1 adds 2
  pb.amoadd_w(t1, a2, t0);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
  EXPECT_EQ(cluster.read_word(counter), 3u);
}

TEST(Cluster, BarrierOrdersProducerConsumer) {
  // Hart 0 writes, both barrier, hart 1 reads the value and copies it.
  Cluster cluster(tiny_config());
  ProgramBuilder pb("barrier");
  Label consumer = pb.make_label();
  Label join = pb.make_label();
  Label fin = pb.make_label();
  pb.bnez(a0, join);  // producer = hart 0
  pb.li(a2, 0x30);
  pb.li(t0, 99);
  pb.sw(t0, a2, 0);
  pb.bind(join);
  pb.barrier();
  pb.bnez(a0, consumer);
  pb.j(fin);
  pb.bind(consumer);
  pb.li(a2, 0x30);
  pb.lw(t0, a2, 0);
  pb.li(a3, 0x34);
  pb.sw(t0, a3, 0);
  pb.bind(fin);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
  EXPECT_EQ(cluster.read_word(0x34), 99u);
}

TEST(Cluster, VectorLoadComputeStore) {
  // vle32 -> vfadd.vv -> vse32 on one hart; functional round trip.
  Cluster cluster(tiny_config());
  const Addr x = 0x80, y = 0x100, z = 0x180;
  for (unsigned i = 0; i < 8; ++i) {
    cluster.write_f32(x + i * 4, static_cast<float>(i));
    cluster.write_f32(y + i * 4, 10.0f * static_cast<float>(i));
  }
  ProgramBuilder pb("vadd");
  Label skip = pb.make_label();
  pb.bnez(a0, skip);
  pb.li(t0, 8);
  pb.vsetvli(t1, t0, Lmul::m2);  // VLEN=128 -> vlmax(m2)=8
  pb.li(a2, static_cast<std::int32_t>(x));
  pb.li(a3, static_cast<std::int32_t>(y));
  pb.li(a4, static_cast<std::int32_t>(z));
  pb.vle32(VReg{0}, a2);
  pb.vle32(VReg{2}, a3);
  pb.vfadd_vv(VReg{4}, VReg{0}, VReg{2});
  pb.vse32(VReg{4}, a4);
  pb.bind(skip);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(z + i * 4), 11.0f * static_cast<float>(i)) << i;
  }
}

TEST(Cluster, VectorStridedAndIndexed) {
  Cluster cluster(tiny_config());
  // Source: 16 floats; strided load picks every 2nd; indexed gathers a
  // permutation.
  const Addr src = 0x200, dst1 = 0x300, idx = 0x380, dst2 = 0x400;
  for (unsigned i = 0; i < 16; ++i) {
    cluster.write_f32(src + i * 4, static_cast<float>(i) + 0.5f);
  }
  const Word perm[8] = {7, 3, 5, 1, 6, 2, 4, 0};
  for (unsigned i = 0; i < 8; ++i) cluster.write_word(idx + i * 4, perm[i] * 4);

  ProgramBuilder pb("stride_index");
  Label skip = pb.make_label();
  pb.bnez(a0, skip);
  pb.li(t0, 8);
  pb.vsetvli(t1, t0, Lmul::m2);
  pb.li(a2, static_cast<std::int32_t>(src));
  pb.li(a3, 8);  // stride bytes
  pb.vlse32(VReg{0}, a2, a3);
  pb.li(a4, static_cast<std::int32_t>(dst1));
  pb.vse32(VReg{0}, a4);
  pb.li(a5, static_cast<std::int32_t>(idx));
  pb.vle32(VReg{2}, a5);
  pb.vluxei32(VReg{4}, a2, VReg{2});
  pb.li(a6, static_cast<std::int32_t>(dst2));
  pb.vse32(VReg{4}, a6);
  pb.bind(skip);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(40'000).all_halted);
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_FLOAT_EQ(cluster.read_f32(dst1 + i * 4), 2.0f * i + 0.5f) << i;
    EXPECT_FLOAT_EQ(cluster.read_f32(dst2 + i * 4), perm[i] + 0.5f) << i;
  }
}

TEST(Cluster, ChainedMaccAndReduction) {
  Cluster cluster(tiny_config());
  const Addr x = 0x80, y = 0x100, out = 0x180;
  float expected = 0.0f;
  for (unsigned i = 0; i < 8; ++i) {
    cluster.write_f32(x + i * 4, static_cast<float>(i));
    cluster.write_f32(y + i * 4, 2.0f);
    expected += 2.0f * static_cast<float>(i);
  }
  ProgramBuilder pb("dot8");
  Label skip = pb.make_label();
  pb.bnez(a0, skip);
  pb.li(t0, 8);
  pb.vsetvli(t1, t0, Lmul::m2);
  pb.li(a2, static_cast<std::int32_t>(x));
  pb.li(a3, static_cast<std::int32_t>(y));
  pb.vle32(VReg{0}, a2);
  pb.vle32(VReg{2}, a3);
  pb.fmv_w_x(ft0, x0);
  pb.vfmv_v_f(VReg{4}, ft0);
  pb.vfmacc_vv(VReg{4}, VReg{0}, VReg{2});
  pb.vfmv_v_f(VReg{6}, ft0);
  pb.vfredusum(VReg{6}, VReg{4}, VReg{6});
  pb.li(t0, 1);
  pb.vsetvli(t1, t0, Lmul::m1);
  pb.li(a4, static_cast<std::int32_t>(out));
  pb.vse32(VReg{6}, a4);
  pb.bind(skip);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(40'000).all_halted);
  EXPECT_FLOAT_EQ(cluster.read_f32(out), expected);
}

TEST(Cluster, BurstConfigProducesSameResults) {
  // Functional equivalence: identical program output with bursts enabled.
  for (const bool burst : {false, true}) {
    ClusterConfig cfg = tiny_config();
    if (burst) cfg = cfg.with_burst(4);
    Cluster cluster(cfg);
    const Addr x = 0x80, z = 0x200;
    for (unsigned i = 0; i < 32; ++i) {
      cluster.write_f32(x + i * 4, static_cast<float>(i) * 1.25f);
    }
    ProgramBuilder pb("copy32");
    Label skip = pb.make_label();
    pb.bnez(a0, skip);
    pb.li(t0, 32);
    pb.vsetvli(t1, t0, Lmul::m8);
    pb.li(a2, static_cast<std::int32_t>(x));
    pb.li(a3, static_cast<std::int32_t>(z));
    pb.vle32(VReg{0}, a2);
    pb.vse32(VReg{0}, a3);
    pb.bind(skip);
    pb.barrier();
    pb.halt();
    cluster.load_program(pb.build());
    EXPECT_TRUE(cluster.run(40'000).all_halted) << "burst=" << burst;
    for (unsigned i = 0; i < 32; ++i) {
      EXPECT_FLOAT_EQ(cluster.read_f32(z + i * 4), static_cast<float>(i) * 1.25f)
          << "burst=" << burst << " i=" << i;
    }
  }
}

TEST(Cluster, ZeroVlVectorOpsAreNops) {
  Cluster cluster(tiny_config());
  ProgramBuilder pb("vl0");
  pb.li(t0, 0);
  pb.vsetvli(t1, t0, Lmul::m2);  // vl = 0
  pb.li(a2, 0x80);
  pb.vle32(VReg{0}, a2);
  pb.vfadd_vv(VReg{2}, VReg{0}, VReg{0});
  pb.vse32(VReg{2}, a2);
  pb.barrier();
  pb.halt();
  cluster.load_program(pb.build());
  EXPECT_TRUE(cluster.run(20'000).all_halted);
}

TEST(Cluster, WatchdogDetectsLostBarrier) {
  // Hart 1 halts without reaching the barrier; hart 0 waits there forever
  // with no forward progress. The watchdog must fire, not spin.
  Cluster cluster(tiny_config());
  ProgramBuilder pb("hang");
  Label wait = pb.make_label();
  pb.beqz(a0, wait);
  pb.halt();  // hart 1 defects
  pb.bind(wait);
  pb.barrier();  // hart 0 can never be released
  pb.halt();
  cluster.load_program(pb.build());
  cluster.set_watchdog_window(2'000);
  EXPECT_THROW((void)cluster.run(1'000'000), DeadlockError);
}

}  // namespace
}  // namespace tcdm
