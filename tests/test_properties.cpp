// Cross-module property tests: randomized invariants that must hold for
// every legal configuration, not just the paper presets.
//
//  * Address map: word <-> (bank, row, tile) is a bijection; burst-span
//    helper consistent with the interleaving.
//  * Burst Sender: staging conserves words and never emits a burst that
//    crosses a tile or exceeds the configured length, for random beats.
//  * Determinism: a cluster run is a pure function of its configuration —
//    two identical runs produce identical cycle counts and results.
//  * FP equivalence: the burst extension is software-transparent — the
//    same program retires the same element order, so results match the
//    baseline bit for bit (not merely within tolerance).
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/burst/burst_sender.hpp"
#include "src/cluster/kernel_runner.hpp"
#include "src/common/rng.hpp"
#include "src/interconnect/network.hpp"
#include "src/kernels/dotp.hpp"
#include "src/kernels/stencil.hpp"
#include "src/memory/address_map.hpp"
#include "src/memory/rob.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

// ------------------------------------------------------------ address map --

class AddressMapProperty
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {};

TEST_P(AddressMapProperty, WordDecompositionIsABijection) {
  const auto [banks, bpt, words] = GetParam();
  const AddressMap map(banks, bpt, words);
  Xoshiro128 rng(banks * 7919 + bpt);
  for (unsigned i = 0; i < 2000; ++i) {
    const auto w = static_cast<std::uint32_t>(
        rng.next_below(static_cast<std::uint32_t>(map.total_bytes() / kWordBytes)));
    const Addr addr = static_cast<Addr>(w) * kWordBytes;
    // Reconstruct the word index from the decomposition.
    EXPECT_EQ(map.row_of(addr) * map.num_banks() + map.bank_of(addr), w);
    // Tile/bank-in-tile refine the bank index.
    EXPECT_EQ(map.tile_of(addr) * map.banks_per_tile() + map.bank_in_tile(addr),
              map.bank_of(addr));
    EXPECT_LT(map.tile_of(addr), map.num_tiles());
    EXPECT_LT(map.row_of(addr), map.bank_words());
  }
}

TEST_P(AddressMapProperty, WordsLeftInTileMatchesInterleaving) {
  const auto [banks, bpt, words] = GetParam();
  const AddressMap map(banks, bpt, words);
  for (std::uint32_t w = 0; w < std::min<std::uint64_t>(
                                    4096, map.total_bytes() / kWordBytes);
       ++w) {
    const Addr addr = static_cast<Addr>(w) * kWordBytes;
    const unsigned left = map.words_left_in_tile(addr);
    ASSERT_GE(left, 1u);
    ASSERT_LE(left, map.banks_per_tile());
    // All words in the claimed span share addr's tile...
    for (unsigned j = 0; j < left; ++j) {
      if (addr + j * kWordBytes >= map.total_bytes()) break;
      EXPECT_EQ(map.tile_of(addr + j * kWordBytes), map.tile_of(addr));
    }
    // ...and the next word (if any) does not — unless the cluster has a
    // single tile, where the interleave wraps back onto it.
    if (map.num_tiles() > 1 && addr + left * kWordBytes < map.total_bytes()) {
      EXPECT_NE(map.tile_of(addr + left * kWordBytes), map.tile_of(addr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AddressMapProperty,
    ::testing::Values(std::make_tuple(16u, 4u, 1024u),   // MP4Spatz4
                      std::make_tuple(256u, 4u, 1024u),  // MP64Spatz4
                      std::make_tuple(1024u, 8u, 1024u), // MP128Spatz8
                      std::make_tuple(8u, 8u, 64u),      // single tile
                      std::make_tuple(32u, 2u, 16u)),    // narrow tiles
    [](const ::testing::TestParamInfo<std::tuple<unsigned, unsigned, unsigned>>& info) {
      return "b" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_w" +
             std::to_string(std::get<2>(info.param));
    });

// ------------------------------------------------------------------- ROB --

TEST(RobProperty, RandomFillOrderAlwaysRetiresInOrder) {
  Xoshiro128 rng(42);
  for (unsigned trial = 0; trial < 50; ++trial) {
    const unsigned depth = 2 + rng.next_below(14);
    ReorderBuffer rob(depth);
    std::vector<std::uint16_t> slots;
    for (unsigned i = 0; i < depth; ++i) slots.push_back(rob.alloc());
    ASSERT_TRUE(rob.full());
    // Fill in a random permutation; value = 1000 + allocation index.
    std::vector<unsigned> order(depth);
    for (unsigned i = 0; i < depth; ++i) order[i] = i;
    for (unsigned i = depth; i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    unsigned retired = 0;
    for (unsigned idx : order) {
      rob.fill(slots[idx], 1000 + idx);
      // Retire everything that became head-ready.
      while (rob.head_ready()) {
        EXPECT_EQ(rob.pop_head(), 1000 + retired);
        ++retired;
      }
    }
    EXPECT_EQ(retired, depth);
    EXPECT_TRUE(rob.empty());
  }
}

// ---------------------------------------------------------- burst sender --

class SenderTile final : public TileServices {
 public:
  SenderTile(StatsRegistry& stats, unsigned banks, unsigned bpt)
      : map_(banks, bpt, 256),
        topo_({1, banks / bpt}, {{1, 1}, {1, 1}}),
        net_(topo_, NetworkConfig{.master_extra_slots = 64, .slave_depth = 64}, stats) {}

  bool try_local_push(unsigned, const BankReq&) override {
    ++local_words;
    return true;
  }
  HierNetwork& net() override { return net_; }
  const AddressMap& map() const override { return map_; }
  TileId tile_id() const override { return 0; }

  unsigned local_words = 0;
  AddressMap map_;
  Topology topo_;
  HierNetwork net_;
};

TEST(BurstSenderProperty, RandomBeatsConserveWordsAndRespectTiles) {
  Xoshiro128 rng(7);
  for (unsigned trial = 0; trial < 200; ++trial) {
    StatsRegistry stats;
    const unsigned bpt = 1u << rng.next_below(4);          // 1,2,4,8
    const unsigned tiles = 2u << rng.next_below(3);        // 2,4,8
    SenderTile tile(stats, bpt * tiles, bpt);
    const unsigned ports = 1 + rng.next_below(8);
    const unsigned max_len = 1 + rng.next_below(std::min(bpt, kMaxBurstLen));
    BurstSender sender({.enable_bursts = true, .max_burst_len = max_len,
                        .staging_beats = 16},
                       ports);
    sender.attach_stats(stats, "s");

    // Random unit-stride beat fully inside the address space.
    const unsigned n = 1 + rng.next_below(ports);
    const auto limit =
        static_cast<std::uint32_t>(tile.map_.total_bytes() / kWordBytes - n);
    BeatRequest beat;
    beat.unit_stride_load = true;
    const Addr base = static_cast<Addr>(rng.next_below(limit)) * kWordBytes;
    for (unsigned i = 0; i < n; ++i) {
      WordRequest w;
      w.addr = base + i * kWordBytes;
      w.port = static_cast<std::uint8_t>(i % ports);
      w.rob_slot = static_cast<std::uint16_t>(i);
      beat.words.push_back(w);
    }
    ASSERT_TRUE(sender.accept_beat(beat, tile.map_, 0));
    for (Cycle c = 0; c < 4 * n + 8; ++c) sender.dispatch(c, tile);

    // Conservation: every word went somewhere exactly once.
    const double sent = stats.value("s.local_words") +
                        stats.value("s.narrow_remote_words") +
                        stats.value("s.burst_words");
    EXPECT_EQ(sent, n) << "bpt=" << bpt << " ports=" << ports << " n=" << n;
    EXPECT_EQ(tile.local_words, static_cast<unsigned>(stats.value("s.local_words")));
    EXPECT_TRUE(sender.staging_empty());
  }
}

// ------------------------------------------------------------ determinism --

TEST(Determinism, IdenticalRunsProduceIdenticalCyclesAndResults) {
  for (unsigned gf : {0u, 4u}) {
    const ClusterConfig cfg = test::mp4_config(gf);
    DotpKernel k1(1024, /*seed=*/9), k2(1024, /*seed=*/9);
    const KernelMetrics a = run_kernel(cfg, k1);
    const KernelMetrics b = run_kernel(cfg, k2);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.flops, b.flops);
    EXPECT_DOUBLE_EQ(a.bytes, b.bytes);
  }
}

// ----------------------------------------------- software transparency ----

// The paper calls TCDM Burst "software-transparent": the same binary runs
// unmodified and retires elements in the same order. Floating-point results
// must therefore match the baseline bit for bit.
TEST(Transparency, BurstConfigsProduceBitIdenticalResults) {
  const unsigned h = 18, w = 34;
  std::vector<std::vector<float>> outs;
  for (unsigned mode = 0; mode < 3; ++mode) {
    ClusterConfig cfg = test::mp4_config(mode == 0 ? 0 : (mode == 1 ? 2 : 4));
    Cluster cluster(cfg);
    Jacobi2dKernel k(h, w, /*seed=*/21);
    k.setup(cluster);
    const RunOutcome rc = cluster.run(5'000'000);
    ASSERT_TRUE(rc.all_halted);
    ASSERT_TRUE(k.verify(cluster));
    // Read the full output grid back through the host backdoor. The second
    // MemLayout allocation is the output array; recompute its base the same
    // way the kernel does.
    MemLayout mem(cluster.map());
    (void)mem.alloc_words(h * w);
    const Addr out_base = mem.alloc_words(h * w);
    outs.push_back(cluster.read_block_f32(out_base, h * w));
  }
  EXPECT_TRUE(test::all_ulp_near(outs[1], outs[0], 0));
  EXPECT_TRUE(test::all_ulp_near(outs[2], outs[0], 0));
}

// ---------------------------------------------------------- store bursts --

TEST(Transparency, StoreAndStridedExtensionsAreTransparentToo) {
  const unsigned h = 10, w = 34;
  std::vector<std::vector<float>> outs;
  for (unsigned mode = 0; mode < 3; ++mode) {
    ClusterConfig cfg = test::mp4_config(4);
    if (mode == 1) cfg = cfg.with_strided_bursts();
    if (mode == 2) cfg = cfg.with_store_bursts(4);
    Cluster cluster(cfg);
    Jacobi2dKernel k(h, w, /*seed=*/22);
    k.setup(cluster);
    const RunOutcome rc = cluster.run(5'000'000);
    ASSERT_TRUE(rc.all_halted);
    ASSERT_TRUE(k.verify(cluster));
    MemLayout mem(cluster.map());
    (void)mem.alloc_words(h * w);
    const Addr out_base = mem.alloc_words(h * w);
    outs.push_back(cluster.read_block_f32(out_base, h * w));
  }
  EXPECT_TRUE(test::all_ulp_near(outs[1], outs[0], 0));
  EXPECT_TRUE(test::all_ulp_near(outs[2], outs[0], 0));
}

}  // namespace
}  // namespace tcdm
