// Sharded System execution (docs/CONCURRENCY.md, S1-S3): ShardExecutor's
// lowest-index fault attribution and S1 re-entrancy tripwire, bit-identity
// of sharded System runs against the serial lockstep loop across
// shard_threads x sim_threads x stepping-mode combinations at N == 4 and
// N == 8, the P2 fresh-vs-reset identity under shards, serial-equal
// DeadlockError surfacing from a faulting cluster, and the exclusion of
// shard_threads from the explore config hash.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/cluster/kernel_runner.hpp"
#include "src/common/shard_executor.hpp"
#include "src/common/sim_time.hpp"
#include "src/explore/config_hash.hpp"
#include "src/kernels/axpy.hpp"
#include "src/kernels/dotp.hpp"
#include "src/scenario/scenario_file.hpp"
#include "src/system/system.hpp"
#include "src/system/system_runner.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

using test::mp4_config;

SystemConfig small_system(unsigned clusters) {
  SystemConfig sys;
  sys.name = "shardsys";
  sys.num_clusters = clusters;
  sys.dma_words = 256;
  sys.dma_burst_len = 16;
  return sys;
}

std::vector<std::unique_ptr<Kernel>> axpy_per_cluster(unsigned n) {
  std::vector<std::unique_ptr<Kernel>> kernels;
  for (unsigned c = 0; c < n; ++c) {
    kernels.push_back(std::make_unique<AxpyKernel>(768, 1.25f, 11));
  }
  return kernels;
}

RunnerOptions capped_opts() {
  RunnerOptions opts;
  opts.max_cycles = 5'000'000;
  return opts;
}

/// Everything a system run can observably produce, for bit-exact diffs.
struct SystemImage {
  KernelMetrics metrics;
  std::vector<std::string> stats_json;  // per cluster, index order
};

SystemImage run_image(System& system) {
  SystemImage img;
  img.metrics =
      run_system_kernel(system, axpy_per_cluster(system.num_clusters()), capped_opts());
  for (unsigned c = 0; c < system.num_clusters(); ++c) {
    img.stats_json.push_back(system.cluster(c).stats().to_json());
  }
  return img;
}

void expect_identical(const SystemImage& a, const SystemImage& b) {
  EXPECT_EQ(a.metrics.cycles, b.metrics.cycles);
  EXPECT_EQ(a.metrics.flops, b.metrics.flops);
  EXPECT_EQ(a.metrics.bytes, b.metrics.bytes);
  EXPECT_EQ(a.metrics.noc_bytes, b.metrics.noc_bytes);
  EXPECT_EQ(a.metrics.bw_bytes_per_cycle, b.metrics.bw_bytes_per_cycle);
  EXPECT_EQ(a.metrics.verified, b.metrics.verified);
  EXPECT_EQ(a.metrics.timed_out, b.metrics.timed_out);
  ASSERT_EQ(a.stats_json.size(), b.stats_json.size());
  for (std::size_t c = 0; c < a.stats_json.size(); ++c) {
    EXPECT_EQ(a.stats_json[c], b.stats_json[c]) << "cluster " << c;
  }
}

// -------------------------------------------------------- ShardExecutor ----

TEST(ShardExecutor, LowestIndexExceptionSurfaces) {
  // Faults at indices 2 and 5: the serial ascending-index loop would have
  // hit index 2 first, so that is the exception the span must rethrow (S3),
  // regardless of which shard thread finished first.
  ShardExecutor ex(4);
  try {
    ex.run(8, [](unsigned i) {
      if (i == 2) throw std::runtime_error("shard 2 fault");
      if (i == 5) throw std::runtime_error("shard 5 fault");
    });
    FAIL() << "span with faulting shards returned normally";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 2 fault");
  }
  // The fault path must leave the executor reusable: slots cleared, clean
  // span runs through.
  unsigned hits = 0;
  std::vector<char> seen(8, 0);
  ex.run(8, [&](unsigned i) { seen[i] = 1; });
  for (const char s : seen) hits += static_cast<unsigned>(s);
  EXPECT_EQ(hits, 8u);
  EXPECT_FALSE(ex.in_span());
}

TEST(ShardExecutor, NestedSpanIsAnS1Violation) {
  ShardExecutor ex(2);
  try {
    ex.run(2, [&](unsigned i) {
      if (i == 0) ex.run(1, [](unsigned) {});
    });
    FAIL() << "nested span was not rejected";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("S1"), std::string::npos) << e.what();
  }
  EXPECT_FALSE(ex.in_span());
}

TEST(ShardExecutor, SingleShardSpansRunInline) {
  ShardExecutor ex(4);
  const std::uint64_t before = ex.spans_dispatched();
  bool ran = false;
  ex.run(1, [&](unsigned i) { ran = (i == 0); });
  EXPECT_TRUE(ran);
  EXPECT_EQ(ex.spans_dispatched(), before);  // inline path, no worker epoch
  ex.run(4, [](unsigned) {});
  EXPECT_GT(ex.spans_dispatched(), before);
}

// ------------------------------------------------- resolution & clamping ----

TEST(SystemShardResolution, OptionsOverrideConfigAndClampToClusterCount) {
  const ClusterConfig cfg = mp4_config(4);
  SystemConfig sys_cfg = small_system(4);
  sys_cfg.shard_threads = 4;

  System from_cfg(sys_cfg, cfg, SimOptions{});
  EXPECT_EQ(from_cfg.shard_threads(), 4u);

  System overridden(sys_cfg, cfg, SimOptions{1, SteppingMode::kEventDriven, 2});
  EXPECT_EQ(overridden.shard_threads(), 2u);

  System clamped(sys_cfg, cfg, SimOptions{1, SteppingMode::kEventDriven, 16});
  EXPECT_EQ(clamped.shard_threads(), 4u);  // never more shards than clusters

  System serial(small_system(4), cfg, SimOptions{});
  EXPECT_EQ(serial.shard_threads(), 1u);
}

// ---------------------------------------------------------- determinism ----

TEST(SystemShardDeterminism, BitIdenticalToSerialAcrossTheGrid) {
  const ClusterConfig cfg = mp4_config(4);
  for (const unsigned n : {4u, 8u}) {
    const SystemConfig sys_cfg = small_system(n);

    // Cross-mode anchor: serial, cycle-by-cycle.
    System anchor(sys_cfg, cfg, SimOptions{1, SteppingMode::kCycleByCycle});
    const SystemImage anchor_img = run_image(anchor);
    ASSERT_FALSE(anchor_img.metrics.timed_out);
    ASSERT_TRUE(anchor_img.metrics.verified);

    for (const SteppingMode mode :
         {SteppingMode::kEventDriven, SteppingMode::kCycleByCycle,
          SteppingMode::kCrossCheck}) {
      // Within one mode the FULL image (metrics + every per-cluster stats
      // document) must be bit-identical at any shard x sim combination;
      // only the `sim.*` bookkeeping differs across modes (EV1-EV3).
      System ref(sys_cfg, cfg, SimOptions{1, mode, 1});
      const SystemImage ref_img = run_image(ref);
      EXPECT_EQ(ref_img.metrics.cycles, anchor_img.metrics.cycles);
      EXPECT_EQ(ref_img.metrics.noc_bytes, anchor_img.metrics.noc_bytes);
      EXPECT_EQ(ref_img.metrics.verified, anchor_img.metrics.verified);

      for (const unsigned shards : {2u, 4u}) {
        for (const unsigned sim_threads : {1u, 4u}) {
          System sys(sys_cfg, cfg, SimOptions{sim_threads, mode, shards});
          EXPECT_EQ(sys.shard_threads(), shards);
          const SystemImage img = run_image(sys);
          SCOPED_TRACE(std::to_string(n) + " clusters, " +
                       std::to_string(shards) + " shards, " +
                       std::to_string(sim_threads) + " sim threads, mode " +
                       std::to_string(static_cast<int>(mode)));
          expect_identical(ref_img, img);
        }
      }
    }
  }
}

// ---------------------------------------------------------------- reset ----

TEST(SystemShardReset, FreshAndResetRunsAreBitIdenticalUnderShards) {
  const ClusterConfig cfg = mp4_config(4);
  const SystemConfig sys_cfg = small_system(4);
  const SimOptions sim{1, SteppingMode::kEventDriven, 4};

  System fresh(sys_cfg, cfg, sim);
  const SystemImage ref = run_image(fresh);
  ASSERT_FALSE(ref.metrics.timed_out);

  // Dirty with a different kernel shape, then reset and re-run (P2).
  System reused(sys_cfg, cfg, sim);
  std::vector<std::unique_ptr<Kernel>> dirt;
  for (unsigned c = 0; c < 4; ++c) dirt.push_back(std::make_unique<DotpKernel>(512));
  (void)run_system_kernel(reused, dirt, capped_opts());
  reused.reset();
  const SystemImage got = run_image(reused);
  expect_identical(ref, got);
}

// ---------------------------------------------------------------- faults ----

TEST(SystemShardFaults, DeadlockSurfacesTheSameErrorAsTheSerialLoop) {
  // Clusters 1 and 3 deadlock at a mismatched barrier (hart 0 halts, the
  // rest wait forever); clusters 0 and 2 halt immediately. The serial
  // ascending-index loop surfaces cluster 1's DeadlockError; the sharded
  // run must surface the byte-identical message (S3).
  const ClusterConfig cfg = mp4_config(4);
  const auto program_system = [&](System& system) {
    system.set_watchdog_window(2000);
    for (unsigned c = 0; c < system.num_clusters(); ++c) {
      std::vector<Program> programs;
      for (unsigned h = 0; h < cfg.num_cores(); ++h) {
        if ((c % 2 == 1) && h > 0) {
          ProgramBuilder w("wait");
          w.barrier();
          w.halt();
          programs.push_back(w.build());
        } else {
          ProgramBuilder done("done");
          done.halt();
          programs.push_back(done.build());
        }
      }
      system.cluster(c).load_programs(std::move(programs));
    }
  };

  std::string serial_what;
  {
    System system(small_system(4), cfg, SimOptions{});
    program_system(system);
    try {
      (void)system.run(1'000'000);
      FAIL() << "serial deadlock run returned normally";
    } catch (const DeadlockError& e) {
      serial_what = e.what();
    }
  }
  ASSERT_FALSE(serial_what.empty());

  System system(small_system(4), cfg, SimOptions{1, SteppingMode::kEventDriven, 4});
  program_system(system);
  try {
    (void)system.run(1'000'000);
    FAIL() << "sharded deadlock run returned normally";
  } catch (const DeadlockError& e) {
    EXPECT_EQ(std::string(e.what()), serial_what);
  }
}

// ------------------------------------------------------------- hashing ----

TEST(SystemShardConfig, ShardThreadsIsOmittedAtDefaultAndRoundTrips) {
  SystemConfig cfg = small_system(4);
  // Default (1 = serial) stays out of the document, so every pre-shard
  // suite file, config hash and memo key keeps its exact bytes.
  EXPECT_EQ(cfg.to_json().dump().find("shard_threads"), std::string::npos);
  cfg.shard_threads = 8;
  const Json j = cfg.to_json();
  EXPECT_NE(j.dump().find("shard_threads"), std::string::npos);
  const SystemConfig back = SystemConfig::from_json(j);
  EXPECT_EQ(back.shard_threads, 8u);
}

TEST(SystemShardConfig, ShardThreadsDoesNotAffectTheExploreKey) {
  scenario::FileScenario a;
  a.rel = "a";
  a.config = ClusterConfig::by_name("mp4spatz4");
  a.kernel = scenario::KernelSpec::from_json([] {
    Json k;
    k.set("kind", "axpy");
    k.set("n", 512);
    return k;
  }());
  a.system = small_system(4);

  scenario::FileScenario b = a;
  a.opts.sim.shard_threads = 1;
  a.system->shard_threads = 1;
  b.opts.sim.shard_threads = 8;   // host knobs, bit-identical results
  b.system->shard_threads = 8;
  EXPECT_EQ(explore::canonical_key(a), explore::canonical_key(b));
  EXPECT_EQ(explore::canonical_point_json(a).dump(),
            explore::canonical_point_json(b).dump());
}

}  // namespace
}  // namespace tcdm
