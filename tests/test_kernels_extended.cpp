// Integration tests for the extension workloads (GEMV, Conv2D, Jacobi2D,
// Transpose): golden-model verification across baseline/GF2/GF4 on
// MP4Spatz4, shape sweeps exercising strip-mine tails and unaligned burst
// bases, constructor validation, and performance-direction checks.
#include <gtest/gtest.h>

#include <tuple>

#include "src/kernels/conv2d.hpp"
#include "src/kernels/gemv.hpp"
#include "src/kernels/stencil.hpp"
#include "src/kernels/transpose.hpp"
#include "tests/support/test_support.hpp"

namespace tcdm {
namespace {

using test::mp4_config;
using test::run_capped;

using ExtKernelOnMp4 = test::BurstSweepTest;

TEST_P(ExtKernelOnMp4, GemvVerifies) {
  GemvKernel k(32, 64);
  const KernelMetrics m = run_capped(config(), k);
  EXPECT_KERNEL_OK(m);
  // R=4: AI = 2R / (4(R+1)) = 0.4 FLOP/B; y stores and loop overhead shift
  // it slightly.
  EXPECT_AI_NEAR(m, 0.4, 0.08);
}

TEST_P(ExtKernelOnMp4, Conv2dVerifies) {
  Conv2dKernel k(10, 34);  // 8 output rows = 2 per hart, tail columns
  const KernelMetrics m = run_capped(config(), k);
  EXPECT_KERNEL_OK(m);
  EXPECT_AI_NEAR(m, 0.45, 0.1);
}

TEST_P(ExtKernelOnMp4, Jacobi2dVerifies) {
  Jacobi2dKernel k(10, 34);
  const KernelMetrics m = run_capped(config(), k);
  EXPECT_KERNEL_OK(m);
  EXPECT_AI_NEAR(m, 0.2, 0.05);
}

TEST_P(ExtKernelOnMp4, TransposeVerifies) {
  TransposeKernel k(24);
  const KernelMetrics m = run_capped(config(), k);
  EXPECT_KERNEL_OK(m);
  EXPECT_DOUBLE_EQ(m.flops, 0.0);  // pure data movement
}

TCDM_INSTANTIATE_BURST_SWEEP(ExtKernelOnMp4);

// ---- shape sweeps (strip-mine tails, row counts not divisible by harts) ----

class GemvShapes
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned>> {};

TEST_P(GemvShapes, Verifies) {
  const auto [m_rows, n_cols, r] = GetParam();
  GemvKernel k(m_rows, n_cols, r);
  const KernelMetrics m = run_capped(mp4_config(4), k);
  EXPECT_KERNEL_OK(m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemvShapes,
    ::testing::Values(std::make_tuple(4u, 16u, 1u),    // fewer blocks than harts
                      std::make_tuple(8u, 17u, 2u),    // odd column tail
                      std::make_tuple(12u, 33u, 3u),   // R=3, strip tail
                      std::make_tuple(20u, 8u, 4u),    // short rows (one strip)
                      std::make_tuple(16u, 100u, 4u)),  // long rows
    [](const ::testing::TestParamInfo<std::tuple<unsigned, unsigned, unsigned>>& info) {
      return "m" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

class GridShapes : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(GridShapes, Conv2dVerifies) {
  const auto [h, w] = GetParam();
  Conv2dKernel k(h, w);
  const KernelMetrics m = run_capped(mp4_config(4), k);
  EXPECT_KERNEL_OK(m);
}

TEST_P(GridShapes, Jacobi2dVerifies) {
  const auto [h, w] = GetParam();
  Jacobi2dKernel k(h, w);
  const KernelMetrics m = run_capped(mp4_config(4), k);
  EXPECT_KERNEL_OK(m);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GridShapes,
    ::testing::Values(std::make_pair(3u, 3u),     // minimal legal grid
                      std::make_pair(3u, 67u),    // single stencil row, odd tail
                      std::make_pair(7u, 5u),     // rows < harts leave idle harts
                      std::make_pair(9u, 40u),    // multi-strip rows
                      std::make_pair(16u, 16u)),  // square
    [](const ::testing::TestParamInfo<std::pair<unsigned, unsigned>>& info) {
      return std::to_string(info.param.first) + "x" + std::to_string(info.param.second);
    });

TEST(TransposeShapes, NonPow2AndTiny) {
  for (const unsigned n : {1u, 3u, 12u, 20u}) {
    TransposeKernel k(n);
    const KernelMetrics m = run_capped(mp4_config(4), k);
    EXPECT_TRUE(m.verified) << "n=" << n;
  }
}

// ---- constructor validation ----

TEST(ExtKernelArgs, RejectBadShapes) {
  EXPECT_THROW(GemvKernel(10, 16, 4), std::invalid_argument);  // m % R != 0
  EXPECT_THROW(GemvKernel(8, 16, 0), std::invalid_argument);
  EXPECT_THROW(GemvKernel(8, 16, 5), std::invalid_argument);
  EXPECT_THROW(Conv2dKernel(2, 8), std::invalid_argument);
  EXPECT_THROW(Conv2dKernel(8, 2), std::invalid_argument);
  EXPECT_THROW(Jacobi2dKernel(2, 3), std::invalid_argument);
  EXPECT_THROW(TransposeKernel(0), std::invalid_argument);
}

// ---- performance direction ----

TEST(ExtKernelPerf, BurstSpeedsUpMemoryBoundJacobi) {
  Jacobi2dKernel k1(18, 130), k2(18, 130);
  const KernelMetrics base = run_capped(mp4_config(), k1);
  const KernelMetrics gf4 = run_capped(mp4_config(4), k2);
  ASSERT_KERNEL_OK(base);
  ASSERT_KERNEL_OK(gf4);
  // AI 0.2 FLOP/B is deep in the memory-bound region; the load-side burst
  // win must show (4 of 5 accesses per point are loads).
  EXPECT_SPEEDUP_GE(base, gf4, 1.3);
}

TEST(ExtKernelPerf, BurstSpeedsUpGemv) {
  // 32x256 fp32 = 32 KiB of A: half of MP4's 64 KiB TCDM.
  GemvKernel k1(32, 256), k2(32, 256);
  const KernelMetrics base = run_capped(mp4_config(), k1);
  const KernelMetrics gf4 = run_capped(mp4_config(4), k2);
  ASSERT_KERNEL_OK(base);
  ASSERT_KERNEL_OK(gf4);
  EXPECT_SPEEDUP_GE(base, gf4, 1.3);
}

TEST(ExtKernelPerf, TransposeGainsBoundedByStorePath) {
  TransposeKernel k1(64), k2(64);
  const KernelMetrics base = run_capped(mp4_config(), k1);
  const KernelMetrics gf4 = run_capped(mp4_config(4), k2);
  ASSERT_KERNEL_OK(base);
  ASSERT_KERNEL_OK(gf4);
  // Loads burst but the strided store path stays serialized, so transpose
  // must improve strictly less than a loads-only probe would (and never
  // regress).
  EXPECT_GE(base.cycles, gf4.cycles);
  EXPECT_LT(static_cast<double>(base.cycles) / gf4.cycles, 2.0);
}

}  // namespace
}  // namespace tcdm
