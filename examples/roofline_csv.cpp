// Emit a roofline CSV (Fig. 3 style) for a chosen cluster configuration:
// the ideal and measured bandwidth roofs plus the three paper kernels as
// sample points. Pipe the output into your favourite plotting tool.
//
//   $ ./roofline_csv mp4spatz4 4 > roofline.csv
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analytics/roofline.hpp"
#include "src/cluster/kernel_runner.hpp"
#include "src/kernels/dotp.hpp"
#include "src/kernels/fft.hpp"
#include "src/kernels/matmul.hpp"
#include "src/kernels/probes.hpp"

int main(int argc, char** argv) {
  using namespace tcdm;
  const std::string preset = argc > 1 ? argv[1] : "mp4spatz4";
  const unsigned gf = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;
  ClusterConfig cfg = ClusterConfig::by_name(preset);
  if (gf > 0) cfg = cfg.with_burst(gf);

  RunnerOptions opts;
  opts.max_cycles = 50'000'000;

  // Dashed line: hierarchical average bandwidth from the random probe.
  RandomProbeKernel probe(cfg.num_cores() >= 128 ? 64 : 128);
  RunnerOptions popts = opts;
  popts.verify = false;
  const KernelMetrics pm = run_kernel(cfg, probe, popts);
  const Roofline rl = make_roofline(cfg, pm.bw_bytes_per_cycle);

  std::vector<RooflineSample> samples;
  const auto add = [&](Kernel&& k) {
    const KernelMetrics m = run_kernel(cfg, k, opts);
    samples.push_back({m.kernel + "-" + m.size, m.arithmetic_intensity, m.gflops_ss});
  };
  if (preset == "mp4spatz4") {
    add(DotpKernel(4096));
    add(FftKernel(1, 512));
    add(MatmulKernel(16, 4));
    add(MatmulKernel(64, 8));
  } else if (preset == "mp64spatz4") {
    add(DotpKernel(65536));
    add(FftKernel(4, 2048));
    add(MatmulKernel(64, 4));
    add(MatmulKernel(256, 8));
  } else {
    add(DotpKernel(131072));
    add(FftKernel(8, 4096));
    add(MatmulKernel(128, 4));
    add(MatmulKernel(256, 8));
  }
  std::fputs(roofline_csv(rl, samples).c_str(), stdout);
  return 0;
}
