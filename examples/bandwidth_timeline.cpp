// Bandwidth timeline: record the per-interval achieved bandwidth of a DotP
// run on MP4Spatz4, baseline vs GF4 burst, and emit CSV plus Chrome
// trace-event JSON for visual inspection (chrome://tracing, Perfetto).
//
//   $ ./bandwidth_timeline [out_dir]
//
// Writes <out_dir>/timeline_{baseline,gf4}.{csv,json} (default: cwd) and
// prints a summary. The timeline makes the paper's Fig. 1 serialization
// visible over time: the baseline trace is pinned at the contended
// bandwidth, the burst trace at several times that, with a trough at the
// end-of-kernel barrier in both.
#include <cstdio>
#include <fstream>
#include <string>

#include "src/analytics/timeline.hpp"
#include "src/cluster/cluster.hpp"
#include "src/kernels/dotp.hpp"

namespace {

tcdm::TimelineResult run_one(const tcdm::ClusterConfig& cfg, const std::string& stem,
                             const std::string& dir) {
  tcdm::Cluster cluster(cfg);
  tcdm::DotpKernel dotp(4096);
  dotp.setup(cluster);
  const tcdm::TimelineResult timeline = tcdm::record_timeline(cluster, /*interval=*/50);
  if (!timeline.all_halted || !dotp.verify(cluster)) {
    std::fprintf(stderr, "%s: run failed to complete/verify\n", stem.c_str());
  }

  std::ofstream csv(dir + "/timeline_" + stem + ".csv");
  tcdm::write_timeline_csv(csv, timeline);
  std::ofstream json(dir + "/timeline_" + stem + ".json");
  tcdm::write_timeline_chrome_trace(json, timeline, "tcdm_bw_" + stem);
  return timeline;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tcdm;
  const std::string dir = argc > 1 ? argv[1] : ".";

  std::printf("Recording DotP(4096) bandwidth timelines on MP4Spatz4...\n");
  const TimelineResult base = run_one(ClusterConfig::mp4spatz4(), "baseline", dir);
  const TimelineResult gf4 =
      run_one(ClusterConfig::mp4spatz4().with_burst(4), "gf4", dir);

  std::printf("\n%-24s %12s %12s\n", "", "baseline", "gf4");
  std::printf("%-24s %12lu %12lu\n", "cycles",
              static_cast<unsigned long>(base.total_cycles),
              static_cast<unsigned long>(gf4.total_cycles));
  std::printf("%-24s %12.2f %12.2f\n", "avg BW [B/cycle]", base.avg_bw(), gf4.avg_bw());
  std::printf("%-24s %12.2f %12.2f\n", "peak interval BW", base.peak_bw(),
              gf4.peak_bw());
  std::printf("%-24s %12zu %12zu\n", "samples", base.samples.size(),
              gf4.samples.size());
  std::printf("\nWrote %s/timeline_{baseline,gf4}.{csv,json}\n", dir.c_str());
  std::printf("Open the .json files in chrome://tracing to compare the tracks.\n");
  return base.all_halted && gf4.all_halted ? 0 : 1;
}
