// Scaling study: the paper's headline claim is that TCDM Burst lets
// shared-L1 vector clusters scale "beyond 1000 FPUs". Sweeps custom
// cluster sizes (4 -> 128 tiles, 16 -> 1024 FPUs) with a constant per-core
// working set and prints how baseline and GF4 bandwidth utilization evolve
// with scale. A thin front-end over the scenario registry's "scaling"
// suite (also reachable as `tcdm_run run 'scaling/*' -j 4`).
//
//   $ ./scaling_study [jobs]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/scenario/builtin.hpp"
#include "src/scenario/emit.hpp"
#include "src/scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace tcdm::scenario;
  register_builtin();
  const ScenarioRegistry& reg = ScenarioRegistry::instance();

  SweepOptions opts;
  opts.jobs = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;
  std::vector<ScenarioResult> results =
      run_scenarios(reg.suite_scenarios("scaling"), opts);
  for (const ScenarioResult& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", r.name.c_str(), r.error.c_str());
      return 1;
    }
  }

  ResultSet set;
  for (ScenarioResult& r : results) set.add(std::move(r));
  reg.suite("scaling").print(set);
  return 0;
}
