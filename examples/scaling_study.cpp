// Scaling study: the paper's headline claim is that TCDM Burst lets
// shared-L1 vector clusters scale "beyond 1000 FPUs". This example sweeps
// custom cluster sizes (4 -> 128 tiles, i.e. 16 -> 1024 FPUs) with a
// constant per-core working set, and prints how baseline and GF4 bandwidth
// utilization evolve with scale — the trend of Table I's utilization rows.
//
//   $ ./scaling_study
#include <cstdio>
#include <string>
#include <vector>

#include "src/cluster/kernel_runner.hpp"
#include "src/kernels/dotp.hpp"

namespace {

/// A MemPool-style configuration with `tiles` tiles of 4 FPUs each,
/// grouped 16 tiles per group above 16 tiles (the MP64Spatz4 pattern).
tcdm::ClusterConfig scaled_config(unsigned tiles) {
  tcdm::ClusterConfig c = tcdm::ClusterConfig::mp4spatz4();
  c.name = "mp" + std::to_string(tiles) + "spatz4";
  c.num_tiles = tiles;
  if (tiles <= 16) {
    c.level_sizes = {tiles};
    c.level_latency = {{1, 1}};
    if (tiles > 1) {
      c.level_sizes = {1, tiles};
      c.level_latency = {{1, 1}, {1, 1}};
    }
  } else {
    c.level_sizes = {16, tiles / 16};
    c.level_latency = {{1, 1}, {2, 2}};
  }
  return c;
}

}  // namespace

int main() {
  using namespace tcdm;
  std::printf("Scaling study: DotP, 1024 elements per core, baseline vs GF4\n\n");
  std::printf("%8s %6s | %21s | %21s | %s\n", "", "", "baseline", "GF4 burst", "");
  std::printf("%8s %6s | %10s %10s | %10s %10s | %s\n", "tiles", "FPUs", "BW/core",
              "util", "BW/core", "util", "speedup");

  for (unsigned tiles : {4u, 16u, 32u, 64u, 128u}) {
    const ClusterConfig base_cfg = scaled_config(tiles);
    const ClusterConfig gf4_cfg = base_cfg.with_burst(4);
    const unsigned n = 1024 * base_cfg.num_cores();

    RunnerOptions opts;
    opts.max_cycles = 20'000'000;
    DotpKernel k1(n), k2(n);
    const KernelMetrics base = run_kernel(base_cfg, k1, opts);
    const KernelMetrics gf4 = run_kernel(gf4_cfg, k2, opts);
    if (!base.verified || !gf4.verified) {
      std::fprintf(stderr, "verification failed at %u tiles\n", tiles);
      return 1;
    }
    std::printf("%8u %6u | %10.2f %9.1f%% | %10.2f %9.1f%% | %.2fx\n", tiles,
                base_cfg.num_fpus(), base.bw_per_core,
                100.0 * base.bw_per_core / base_cfg.vlsu_peak_bw(), gf4.bw_per_core,
                100.0 * gf4.bw_per_core / gf4_cfg.vlsu_peak_bw(),
                static_cast<double>(base.cycles) / gf4.cycles);
  }

  std::printf(
      "\nBaseline utilization collapses with scale (more remote traffic,\n"
      "same serialized ports); GF4 holds utilization high — the paper's\n"
      "scalability argument in one sweep.\n");
  return 0;
}
