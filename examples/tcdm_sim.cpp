// tcdm_sim: command-line driver for the simulator — run any built-in kernel
// on any cluster configuration and print the paper's metrics. The kind of
// one-shot experiment a downstream user reaches for first.
//
//   $ ./tcdm_sim --config mp64spatz4 --gf 4 --kernel dotp --size 65536
//   $ ./tcdm_sim --config mp4spatz4 --kernel matmul --size 64:4
//   $ ./tcdm_sim --config mp4spatz4 --gf 4 --strided-bursts \
//         --kernel strided_copy --size 2048:2 --timeline /tmp/bw.csv
//   $ ./tcdm_sim --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/analytics/timeline.hpp"
#include "src/cluster/kernel_runner.hpp"
#include "src/kernels/axpy.hpp"
#include "src/kernels/conv2d.hpp"
#include "src/kernels/dotp.hpp"
#include "src/kernels/fft.hpp"
#include "src/kernels/gemv.hpp"
#include "src/kernels/matmul.hpp"
#include "src/kernels/maxpool.hpp"
#include "src/kernels/probes.hpp"
#include "src/kernels/relu.hpp"
#include "src/kernels/stencil.hpp"
#include "src/kernels/trace_replay.hpp"
#include "src/kernels/transpose.hpp"

namespace {

using namespace tcdm;

void usage() {
  std::puts(
      "tcdm_sim — run a kernel on a simulated MemPool-Spatz cluster\n"
      "\n"
      "options:\n"
      "  --config NAME       mp4spatz4 | mp64spatz4 | mp128spatz8 (default mp4spatz4)\n"
      "  --gf N              enable TCDM Burst with grouping factor N\n"
      "  --strided-bursts    enable the strided-burst extension (needs --gf)\n"
      "  --store-bursts N    enable store bursts, N-word request channel (needs --gf)\n"
      "  --kernel NAME       see --list (default dotp)\n"
      "  --size SPEC         colon-separated dims, kernel-specific (see --list)\n"
      "  --max-cycles N      watchdog budget (default 50000000)\n"
      "  --timeline FILE     record a 50-cycle-interval bandwidth CSV\n"
      "  --stats FILE        dump every simulator counter as JSON\n"
      "  --trace-file FILE   replay a memory trace (one 'hart R|W addr len'\n"
      "                      per line) instead of a computed kernel\n"
      "  --no-verify         skip golden-model verification\n"
      "  --list              print kernels and size specs, then exit");
}

void list_kernels() {
  std::puts(
      "kernel        size spec          example        notes\n"
      "dotp          n                  65536          AI 0.25 FLOP/B\n"
      "axpy          n                  4096           AI 0.17 FLOP/B\n"
      "gemv          m:n[:rowblock]     256:512:4      AI ~0.4 FLOP/B\n"
      "matmul        n[:rowblock]       64:4           AI grows with n\n"
      "fft           k:n                4:2048         k instances of n points\n"
      "conv2d        h:w                130:130        3x3 valid convolution\n"
      "jacobi2d      h:w                130:130        5-point stencil sweep\n"
      "relu          n                  4096           AI 0.125 FLOP/B\n"
      "maxpool2x2    h:w                32:64          stride-2 vlse32 loads\n"
      "transpose     n                  128            pure data movement\n"
      "memcpy        n                  16384          unit loads + stores\n"
      "strided_copy  n:stride           8192:2         vlse32 gather\n"
      "probe         iters              128            random-address loads");
}

std::vector<unsigned> parse_dims(const std::string& spec) {
  std::vector<unsigned> dims;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t colon = spec.find(':', pos);
    const std::string part =
        spec.substr(pos, colon == std::string::npos ? std::string::npos : colon - pos);
    if (!part.empty()) dims.push_back(static_cast<unsigned>(std::stoul(part)));
    if (colon == std::string::npos) break;
    pos = colon + 1;
  }
  return dims;
}

std::unique_ptr<Kernel> make_kernel(const std::string& name,
                                    const std::vector<unsigned>& d) {
  const auto dim = [&](std::size_t i, unsigned dflt) {
    return i < d.size() ? d[i] : dflt;
  };
  if (name == "dotp") return std::make_unique<DotpKernel>(dim(0, 4096));
  if (name == "axpy") return std::make_unique<AxpyKernel>(dim(0, 4096));
  if (name == "gemv") {
    return std::make_unique<GemvKernel>(dim(0, 64), dim(1, 256), dim(2, 4));
  }
  if (name == "matmul") return std::make_unique<MatmulKernel>(dim(0, 64), dim(1, 4));
  if (name == "fft") return std::make_unique<FftKernel>(dim(0, 1), dim(1, 512));
  if (name == "conv2d") return std::make_unique<Conv2dKernel>(dim(0, 34), dim(1, 66));
  if (name == "jacobi2d") {
    return std::make_unique<Jacobi2dKernel>(dim(0, 34), dim(1, 66));
  }
  if (name == "relu") return std::make_unique<ReluKernel>(dim(0, 4096));
  if (name == "maxpool2x2") {
    return std::make_unique<MaxPoolKernel>(dim(0, 32), dim(1, 64));
  }
  if (name == "transpose") return std::make_unique<TransposeKernel>(dim(0, 64));
  if (name == "memcpy") return std::make_unique<MemcpyKernel>(dim(0, 4096));
  if (name == "strided_copy") {
    return std::make_unique<StridedCopyKernel>(dim(0, 2048), dim(1, 2));
  }
  if (name == "probe") return std::make_unique<RandomProbeKernel>(dim(0, 128));
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config = "mp4spatz4";
  std::string kernel_name = "dotp";
  std::string size_spec;
  std::string timeline_path;
  std::string stats_path;
  std::string trace_path;
  unsigned gf = 0;
  unsigned store_req_gf = 0;
  bool strided = false;
  bool verify = true;
  Cycle max_cycles = 50'000'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--list") {
      list_kernels();
      return 0;
    } else if (arg == "--config") {
      config = next();
    } else if (arg == "--gf") {
      gf = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--strided-bursts") {
      strided = true;
    } else if (arg == "--store-bursts") {
      store_req_gf = static_cast<unsigned>(std::stoul(next()));
    } else if (arg == "--kernel") {
      kernel_name = next();
    } else if (arg == "--size") {
      size_spec = next();
    } else if (arg == "--max-cycles") {
      max_cycles = std::stoull(next());
    } else if (arg == "--timeline") {
      timeline_path = next();
    } else if (arg == "--stats") {
      stats_path = next();
    } else if (arg == "--trace-file") {
      trace_path = next();
    } else if (arg == "--no-verify") {
      verify = false;
    } else {
      std::fprintf(stderr, "unknown option: %s (try --help)\n", arg.c_str());
      return 2;
    }
  }

  try {
    ClusterConfig cfg = ClusterConfig::by_name(config);
    if (gf > 0) cfg = cfg.with_burst(gf);
    if (strided) cfg = cfg.with_strided_bursts();
    if (store_req_gf > 0) cfg = cfg.with_store_bursts(store_req_gf);
    cfg.validate();

    std::unique_ptr<Kernel> kernel;
    if (!trace_path.empty()) {
      std::ifstream trace_in(trace_path);
      if (!trace_in) {
        std::fprintf(stderr, "cannot open trace file: %s\n", trace_path.c_str());
        return 2;
      }
      kernel = std::make_unique<TraceReplayKernel>(read_trace(trace_in));
    } else {
      kernel = make_kernel(kernel_name, parse_dims(size_spec));
    }
    if (kernel == nullptr) {
      std::fprintf(stderr, "unknown kernel: %s (try --list)\n", kernel_name.c_str());
      return 2;
    }

    KernelMetrics m;
    if (timeline_path.empty() && stats_path.empty()) {
      RunnerOptions opts;
      opts.verify = verify;
      opts.max_cycles = max_cycles;
      m = run_kernel(cfg, *kernel, opts);
    } else {
      Cluster cluster(cfg);
      kernel->setup(cluster);
      const TimelineResult t = record_timeline(cluster, 50, max_cycles);
      if (!timeline_path.empty()) {
        std::ofstream csv(timeline_path);
        write_timeline_csv(csv, t);
        std::printf("timeline: %zu samples -> %s\n", t.samples.size(),
                    timeline_path.c_str());
      }
      if (!stats_path.empty()) {
        std::ofstream json(stats_path);
        json << cluster.stats().to_json();
        std::printf("stats: -> %s\n", stats_path.c_str());
      }
      // Derive the metrics from the finished run (the runner would re-setup).
      m.kernel = kernel->name();
      m.size = kernel->size_desc();
      m.cycles = t.total_cycles;
      m.timed_out = !t.all_halted;
      m.flops = cluster.total_flops();
      m.bytes = kernel->traffic_bytes(cluster);
      if (m.cycles > 0) {
        m.flops_per_cycle = m.flops / static_cast<double>(m.cycles);
        m.fpu_util = m.flops_per_cycle / cfg.peak_flops_per_cycle();
        m.bw_per_core = m.bytes / static_cast<double>(m.cycles) / cfg.num_cores();
        m.gflops_ss = m.flops_per_cycle * cfg.freq_ss_mhz / 1000.0;
        m.gflops_tt = m.flops_per_cycle * cfg.freq_tt_mhz / 1000.0;
      }
      if (m.bytes > 0) m.arithmetic_intensity = m.flops / m.bytes;
      m.verified = verify && !m.timed_out && kernel->verify(cluster);
    }

    std::printf("config                    %s (%u FPUs)\n", cfg.name.c_str(),
                cfg.num_fpus());
    std::printf("kernel                    %s %s\n", m.kernel.c_str(), m.size.c_str());
    std::printf("cycles                    %llu%s\n",
                static_cast<unsigned long long>(m.cycles),
                m.timed_out ? "  (TIMED OUT)" : "");
    std::printf("arithmetic intensity      %.3f FLOP/B\n", m.arithmetic_intensity);
    std::printf("FPU utilization           %.2f%%\n", 100.0 * m.fpu_util);
    std::printf("bandwidth per core        %.2f B/cycle (peak %.0f)\n", m.bw_per_core,
                cfg.vlsu_peak_bw());
    std::printf("performance               %.2f GFLOPS @%.0f MHz ss / %.2f @tt\n",
                m.gflops_ss, cfg.freq_ss_mhz, m.gflops_tt);
    std::printf("verified                  %s\n",
                verify ? (m.verified ? "yes" : "NO") : "skipped");
    return (!verify || m.verified) && !m.timed_out ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
