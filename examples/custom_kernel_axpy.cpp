// Writing your own kernel with the program-builder API.
//
// This example hand-writes a strip-mined AXPY (y = a*x + y) directly with
// ProgramBuilder — the same way the library's built-in kernels are written —
// loads it on every hart of a burst-enabled cluster, preloads data through
// the host backdoor, runs, and verifies against plain C++.
//
//   $ ./custom_kernel_axpy
#include <cstdio>
#include <vector>

#include "src/cluster/cluster.hpp"
#include "src/isa/disasm.hpp"

int main() {
  using namespace tcdm;

  const unsigned n = 2048;
  const float alpha = 0.75f;
  ClusterConfig cfg = ClusterConfig::mp4spatz4().with_burst(4);
  Cluster cluster(cfg);
  const unsigned nharts = cfg.num_cores();
  const unsigned chunk = n / nharts;

  // ---- data layout + preload (host backdoor) ----
  const Addr x_base = 0;
  const Addr y_base = n * kWordBytes;
  const Addr alpha_addr = 2 * n * kWordBytes;
  std::vector<float> x(n), y(n), expected(n);
  for (unsigned i = 0; i < n; ++i) {
    x[i] = 0.01f * static_cast<float>(i);
    y[i] = 1.0f - 0.02f * static_cast<float>(i);
    expected[i] = alpha * x[i] + y[i];
  }
  cluster.write_block_f32(x_base, x);
  cluster.write_block_f32(y_base, y);
  cluster.write_f32(alpha_addr, alpha);

  // ---- the program: every hart runs this, parameterized by a0 = hartid ----
  ProgramBuilder pb("my-axpy");
  const VReg vx{0}, vy{8};

  pb.li(t0, static_cast<std::int32_t>(chunk * kWordBytes));
  pb.mul(t1, a0, t0);  // this hart's byte offset
  pb.li(a2, static_cast<std::int32_t>(x_base));
  pb.add(a2, a2, t1);
  pb.li(a3, static_cast<std::int32_t>(y_base));
  pb.add(a3, a3, t1);
  pb.li(t2, static_cast<std::int32_t>(alpha_addr));
  pb.flw(fa0, t2, 0);
  pb.li(s0, static_cast<std::int32_t>(chunk));  // elements left

  Label loop = pb.make_label();
  Label done = pb.make_label();
  pb.bind(loop);
  pb.beqz(s0, done);
  pb.vsetvli(t3, s0, Lmul::m8);   // strip-mine: vl = min(remaining, VLMAX)
  pb.vle32(vx, a2);               // burst-eligible unit-stride load
  pb.vle32(vy, a3);
  pb.vfmacc_vf(vy, fa0, vx);      // y += alpha * x (chained off the loads)
  pb.vse32(vy, a3);               // stores are posted narrow writes
  pb.slli(t4, t3, 2);
  pb.add(a2, a2, t4);
  pb.add(a3, a3, t4);
  pb.sub(s0, s0, t3);
  pb.j(loop);
  pb.bind(done);
  pb.barrier();
  pb.halt();

  const Program prog = pb.build();
  std::printf("program '%s': %zu instructions; first lines:\n", prog.name().c_str(),
              prog.size());
  for (unsigned i = 0; i < 6; ++i) std::printf("  %u: %s\n", i, disasm(prog.at(i)).c_str());

  // ---- run + verify ----
  cluster.load_program(prog);
  const RunOutcome out = cluster.run();
  std::vector<float> result = cluster.read_block_f32(y_base, n);
  unsigned mismatches = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (std::abs(result[i] - expected[i]) > 1e-5f) ++mismatches;
  }
  std::printf("\nran %lu cycles on %u harts; %u mismatches; %.2f B/cycle/core\n",
              static_cast<unsigned long>(out.cycles), nharts, mismatches,
              cluster.bytes_accessed() / static_cast<double>(out.cycles) / nharts);
  return mismatches == 0 ? 0 : 1;
}
