// Bandwidth explorer: measure the hierarchical-average bandwidth of any
// preset cluster under random vector-load traffic and compare it against
// the paper's analytical model (Table I). A thin front-end over the
// scenario registry's "explorer" suite (also reachable as
// `tcdm_run run 'explorer/<preset>/<variant>/*'`).
//
//   $ ./bandwidth_explorer [mp4spatz4|mp64spatz4|mp128spatz8] [gf: 0|2|4|8]
//   $ ./bandwidth_explorer mp64spatz4 4
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analytics/bandwidth_model.hpp"
#include "src/scenario/builtin.hpp"
#include "src/scenario/runner.hpp"

int main(int argc, char** argv) {
  using namespace tcdm;
  const std::string preset = argc > 1 ? argv[1] : "mp64spatz4";
  const unsigned gf = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;
  const std::string variant = gf == 0 ? "baseline" : "gf" + std::to_string(gf);

  scenario::register_builtin();
  const auto& reg = scenario::ScenarioRegistry::instance();
  const auto selection = reg.select("explorer/" + preset + "/" + variant + "/*");
  if (selection.empty()) {
    std::fprintf(stderr,
                 "no registered explorer scenarios for %s/%s — see "
                 "`tcdm_run list 'explorer/*'` for the available sweep\n",
                 preset.c_str(), variant.c_str());
    return 2;
  }

  ClusterConfig cfg = ClusterConfig::by_name(preset);
  if (gf > 0) cfg = cfg.with_burst(gf);
  std::printf("cluster %s: %u cores x %u FPUs, %u banks, %s\n", cfg.name.c_str(),
              cfg.num_cores(), cfg.vlsu_ports, cfg.num_banks(),
              cfg.burst_enabled ? "TCDM Burst enabled" : "baseline interconnect");

  const char* label[] = {"uniform random (paper probe)", "remote-only", "local-only"};
  unsigned i = 0;
  for (const scenario::ScenarioResult& r : scenario::run_scenarios(selection)) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", r.name.c_str(), r.error.c_str());
      return 1;
    }
    std::printf("  %-30s %6.2f B/cyc/core  (%5.1f%% of peak)\n",
                i < 3 ? label[i] : r.rel.c_str(), r.metrics.bw_per_core,
                100.0 * r.metrics.bw_per_core / cfg.vlsu_peak_bw());
    ++i;
  }

  const unsigned eff_gf = cfg.burst_enabled ? cfg.grouping_factor : 1;
  std::printf("analytical model (eq. 5):       %6.2f B/cyc/core  (%5.1f%% of peak)\n",
              model::hier_avg_bw(cfg.num_cores(), cfg.vlsu_ports, eff_gf),
              100.0 * model::utilization(cfg.num_cores(), cfg.vlsu_ports, eff_gf));
  return 0;
}
