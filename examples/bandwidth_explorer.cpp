// Bandwidth explorer: measure the hierarchical-average bandwidth of any
// preset cluster under random vector-load traffic and compare it against
// the paper's analytical model (Table I).
//
//   $ ./bandwidth_explorer [mp4spatz4|mp64spatz4|mp128spatz8] [gf]
//   $ ./bandwidth_explorer mp64spatz4 4
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/analytics/bandwidth_model.hpp"
#include "src/cluster/kernel_runner.hpp"
#include "src/kernels/probes.hpp"

int main(int argc, char** argv) {
  using namespace tcdm;
  const std::string preset = argc > 1 ? argv[1] : "mp64spatz4";
  const unsigned gf = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 0;

  ClusterConfig cfg = ClusterConfig::by_name(preset);
  if (gf > 0) cfg = cfg.with_burst(gf);
  std::printf("cluster %s: %u cores x %u FPUs, %u banks, %s\n", cfg.name.c_str(),
              cfg.num_cores(), cfg.vlsu_ports, cfg.num_banks(),
              cfg.burst_enabled ? "TCDM Burst enabled" : "baseline interconnect");

  const struct {
    const char* name;
    RandomProbeKernel::Pattern pattern;
  } patterns[] = {
      {"uniform random (paper probe)", RandomProbeKernel::Pattern::kUniform},
      {"remote-only", RandomProbeKernel::Pattern::kRemoteOnly},
      {"local-only", RandomProbeKernel::Pattern::kLocalOnly},
  };

  RunnerOptions opts;
  opts.verify = false;
  opts.max_cycles = 5'000'000;
  for (const auto& p : patterns) {
    RandomProbeKernel probe(cfg.num_cores() >= 128 ? 64 : 128, p.pattern);
    const KernelMetrics m = run_kernel(cfg, probe, opts);
    std::printf("  %-30s %6.2f B/cyc/core  (%5.1f%% of peak)\n", p.name, m.bw_per_core,
                100.0 * m.bw_per_core / cfg.vlsu_peak_bw());
  }

  const unsigned eff_gf = cfg.burst_enabled ? cfg.grouping_factor : 1;
  std::printf("analytical model (eq. 5):       %6.2f B/cyc/core  (%5.1f%% of peak)\n",
              model::hier_avg_bw(cfg.num_cores(), cfg.vlsu_ports, eff_gf),
              100.0 * model::utilization(cfg.num_cores(), cfg.vlsu_ports, eff_gf));
  return 0;
}
