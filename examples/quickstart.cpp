// Quickstart: build the paper's 16-FPU cluster twice — baseline and with the
// TCDM Burst extension (GF4) — run the same DotP workload on both, and watch
// the interconnect serialization bottleneck (paper Fig. 1) disappear.
//
//   $ ./quickstart
#include <cstdio>

#include "src/cluster/kernel_runner.hpp"
#include "src/kernels/dotp.hpp"

int main() {
  using namespace tcdm;

  std::printf("TCDM Burst Access quickstart: DotP(4096) on MP4Spatz4 (16 FPUs)\n\n");

  KernelMetrics base, burst;
  {
    // Baseline: remote vector accesses serialize one 32-bit word per cycle
    // on the hierarchical interconnect ports.
    ClusterConfig cfg = ClusterConfig::mp4spatz4();
    DotpKernel dotp(4096);
    base = run_kernel(cfg, dotp);
  }
  {
    // TCDM Burst, GF4: the Burst Sender coalesces each K-word beat into one
    // burst request; Burst Managers split it across SPM banks and merge the
    // responses into 4-word beats on the widened response channel.
    ClusterConfig cfg = ClusterConfig::mp4spatz4().with_burst(4);
    DotpKernel dotp(4096);
    burst = run_kernel(cfg, dotp);
  }

  std::printf("%-28s %12s %12s\n", "", "baseline", "tcdm-burst");
  std::printf("%-28s %12lu %12lu\n", "cycles", static_cast<unsigned long>(base.cycles),
              static_cast<unsigned long>(burst.cycles));
  std::printf("%-28s %11.2f%% %11.2f%%\n", "FPU utilization", 100.0 * base.fpu_util,
              100.0 * burst.fpu_util);
  std::printf("%-28s %12.2f %12.2f\n", "bandwidth [B/cycle/core]", base.bw_per_core,
              burst.bw_per_core);
  std::printf("%-28s %12.2f %12.2f\n", "performance [GFLOPS @ss]", base.gflops_ss,
              burst.gflops_ss);
  std::printf("%-28s %12s %12s\n", "result verified",
              base.verified ? "yes" : "NO", burst.verified ? "yes" : "NO");
  std::printf("\nSpeedup: %.2fx (paper reports +106%% = 2.06x for this kernel)\n",
              static_cast<double>(base.cycles) / static_cast<double>(burst.cycles));
  return base.verified && burst.verified ? 0 : 1;
}
