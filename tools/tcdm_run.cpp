// tcdm_run: one CLI for every paper table, figure, ablation and study —
// builtin or data-driven. Drives the scenario registry, so reproducing any
// artifact (or exploring a brand-new one from a JSON suite file) never
// requires a new binary.
//
//   tcdm_run list [--file F]... [glob...]      list suites and scenarios
//   tcdm_run run [-j N] [--sim-threads N] [--stepping M] [--file F]...
//                [--no-builtin] [glob...]      run a selection; print tables
//   tcdm_run emit [-j N] [--sim-threads N] [--stepping M] [--file F]...
//                 [--no-builtin] --out <dir> (--all | suite|glob...)
//                                              sweep suites, write <dir>/<suite>.json
//   tcdm_run bench [--reps N] [-j N] [--sim-threads N] [--stepping M]
//                  [--file F]... [--no-builtin] [--out F] [--metrics-out D]
//                  (--all | suite|glob...)
//                                              time whole-suite sweeps for N
//                                              repetitions; print a throughput
//                                              table and write a versioned
//                                              tcdm-perf JSON report
//   tcdm_run validate [file...|-]              load + expand + validate suite
//                                              files (default: stdin)
//   tcdm_run gen --seed N --count K [--out F]  emit a randomized, invariant-
//                                              checked suite file (stdout)
//   tcdm_run explore [-j N] [--sim-threads N] [--stepping M] [--objective NAME]
//                    [--area-cap MGE] [--budget N] [--cache F] [--state F]
//                    [--resume] [--no-prune] [--report F] [--stats-out F]
//                    [--fail-after N] <suite.json>
//                                              memoized design-space search
//                                              over a suite file; prints the
//                                              Pareto frontier
//
// `--file` registers a tcdm-scenarios JSON suite (repeatable) next to the
// builtins; `--no-builtin` starts from an empty registry instead, which
// lets a file re-express a builtin suite under its own name. With `--file`
// and no globs/suites, the file's suites are selected. Globs match full
// scenario names (`*` crosses `/`). Parallel runs (-j) produce
// byte-identical emissions and stdout tables to serial ones; --sim-threads
// additionally parallelizes each cluster's cycle loop (bit-identical at
// any count; 0 = hardware concurrency). `--stepping event|cycle|check`
// selects how each cluster advances time (event-driven skipping, the
// cycle-by-cycle reference loop, or the self-verifying cross-check mode —
// all bit-identical; see docs/ARCHITECTURE.md).
// Exit codes: 0 ok, 1 scenario/validation failure or empty selection,
// 2 usage/IO errors (including unknown subcommands and corrupt explore
// cache/checkpoint files), 3 injected --fail-after abort.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/analytics/report.hpp"
#include "src/common/json.hpp"
#include "src/explore/explore.hpp"
#include "src/scenario/builtin.hpp"
#include "src/scenario/emit.hpp"
#include "src/scenario/runner.hpp"
#include "src/scenario/scenario_file.hpp"
#include "src/scenario/scenario_gen.hpp"

namespace tcdm::scenario {
namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s list [--file F]... [glob...]\n"
      "       %s run [-j N] [--sim-threads N] [--shard-threads N] [--stepping M]\n"
      "            [--file F]... [--no-builtin] [glob...]\n"
      "       %s emit [-j N] [--sim-threads N] [--shard-threads N] [--stepping M]\n"
      "            [--file F]... [--no-builtin] --out <dir> (--all | suite|glob...)\n"
      "       %s bench [--reps N] [-j N] [--sim-threads N] [--shard-threads N]\n"
      "            [--stepping M] [--file F]... [--no-builtin] [--out F]\n"
      "            [--metrics-out D] (--all | suite|glob...)\n"
      "       %s validate [file...|-]\n"
      "       %s gen [--seed N] [--count K] [--out <file>]\n"
      "       %s explore [-j N] [--sim-threads N] [--shard-threads N] [--stepping M]\n"
      "            [--objective NAME] [--area-cap MGE] [--budget N] [--cache F]\n"
      "            [--state F] [--resume] [--no-prune] [--report F] [--stats-out F]\n"
      "            [--fail-after N] <suite.json>\n"
      "\n"
      "  --stepping M   time advance per cluster: event (skip quiet spans,\n"
      "                 default), cycle (reference loop), check (skip decisions\n"
      "                 verified cycle-by-cycle). All modes are bit-identical.\n"
      "  --shard-threads N   system scenarios only: step the N clusters of a\n"
      "                 \"system\" block on N shard threads between global sync\n"
      "                 points (0 = hardware concurrency; the --sim-threads\n"
      "                 tile budget is split across the shards). Bit-identical\n"
      "                 to serial at any value.\n"
      "\n"
      "  Scenarios may scale out with a \"system\" block (N clusters over a\n"
      "  modeled L2/NoC with inter-cluster DMA bursts); its barrier_kind is\n"
      "  one of: central, tree, butterfly, and its dma_words must fit the\n"
      "  cluster TCDM (banks x bank_words — `validate` names the offending\n"
      "  cluster config and the resolved capacity). `gen` emits such points\n"
      "  too.\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

/// Flags shared by list/run/emit: sweep and stepping parallelism, plus the
/// data-driven registry sources.
struct CommonOptions {
  unsigned jobs = 1;
  unsigned sim_threads = 0;
  unsigned shard_threads = 0;  // 0 = per-spec (system scenarios only)
  std::optional<SteppingMode> stepping;  // unset = per-spec (event-driven)
  std::vector<std::string> files;
  bool no_builtin = false;
};

/// --stepping values; `check` maps to the self-verifying kCrossCheck mode.
bool parse_stepping(const std::string& value, std::optional<SteppingMode>& out) {
  if (value == "event") {
    out = SteppingMode::kEventDriven;
  } else if (value == "cycle") {
    out = SteppingMode::kCycleByCycle;
  } else if (value == "check") {
    out = SteppingMode::kCrossCheck;
  } else {
    return false;
  }
  return true;
}

/// Parses the common flags out of `args`; returns false on a malformed or
/// valueless flag (caller prints usage).
bool parse_common(std::vector<std::string>& args, CommonOptions& opts) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    unsigned* out = nullptr;
    if (args[i] == "-j" || args[i] == "--jobs") {
      if (i + 1 >= args.size()) return false;
      value = args[++i];
      out = &opts.jobs;
    } else if (args[i].rfind("-j", 0) == 0 && args[i].size() > 2) {
      value = args[i].substr(2);
      out = &opts.jobs;
    } else if (args[i] == "--sim-threads") {
      if (i + 1 >= args.size()) return false;
      value = args[++i];
      out = &opts.sim_threads;
    } else if (args[i].rfind("--sim-threads=", 0) == 0) {
      value = args[i].substr(14);
      out = &opts.sim_threads;
    } else if (args[i] == "--shard-threads") {
      if (i + 1 >= args.size()) return false;
      value = args[++i];
      out = &opts.shard_threads;
    } else if (args[i].rfind("--shard-threads=", 0) == 0) {
      value = args[i].substr(16);
      out = &opts.shard_threads;
    } else if (args[i] == "--stepping") {
      if (i + 1 >= args.size() || !parse_stepping(args[i + 1], opts.stepping)) return false;
      ++i;
      continue;
    } else if (args[i].rfind("--stepping=", 0) == 0) {
      if (!parse_stepping(args[i].substr(11), opts.stepping)) return false;
      continue;
    } else if (args[i] == "--file") {
      if (i + 1 >= args.size()) return false;
      opts.files.push_back(args[++i]);
      continue;
    } else if (args[i].rfind("--file=", 0) == 0) {
      opts.files.push_back(args[i].substr(7));
      continue;
    } else if (args[i] == "--no-builtin") {
      opts.no_builtin = true;
      continue;
    } else {
      rest.push_back(args[i]);
      continue;
    }
    try {
      *out = static_cast<unsigned>(std::stoul(value));
    } catch (const std::exception&) {
      return false;
    }
    // SweepOptions uses 0 for "keep each spec's setting", so an explicit
    // `--sim-threads 0` / `--shard-threads 0` resolves to the hardware
    // concurrency here.
    if (out == &opts.sim_threads && opts.sim_threads == 0) {
      opts.sim_threads = std::max(1u, std::thread::hardware_concurrency());
    }
    if (out == &opts.shard_threads && opts.shard_threads == 0) {
      opts.shard_threads = std::max(1u, std::thread::hardware_concurrency());
    }
  }
  args = std::move(rest);
  return true;
}

/// Populate the process registry from the builtins (unless --no-builtin)
/// and every --file suite. Returns false after printing the error (a bad
/// scenario file is an IO/usage problem, exit 2). Registered file-suite
/// names land in `file_suites`.
bool setup_registry(const CommonOptions& opts, std::vector<std::string>& file_suites) {
  if (!opts.no_builtin) {
    register_builtin();
  } else if (opts.files.empty()) {
    std::fprintf(stderr, "--no-builtin requires at least one --file\n");
    return false;
  }
  for (const std::string& path : opts.files) {
    try {
      file_suites.push_back(register_suite_file(ScenarioRegistry::instance(), path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return false;
    }
  }
  return true;
}

/// Resolve suite names/globs against the registry, appending matches to
/// `suites` in registration order and deduplicating. Returns false after
/// printing the error when a pattern matches no suite (shared by emit and
/// bench so their selection semantics cannot drift apart).
bool resolve_suite_globs(const ScenarioRegistry& reg,
                         const std::vector<std::string>& wanted,
                         std::vector<std::string>& suites) {
  std::set<std::string> seen;
  for (const SuiteSpec& s : reg.suites()) {
    for (const std::string& w : wanted) {
      if (glob_match(w, s.name) && seen.insert(s.name).second) {
        suites.push_back(s.name);
        break;
      }
    }
  }
  for (const std::string& w : wanted) {
    bool matched = false;
    for (const SuiteSpec& s : reg.suites()) {
      if (glob_match(w, s.name)) matched = true;
    }
    if (!matched) {
      std::fprintf(stderr, "no suite matches '%s'\n", w.c_str());
      return false;
    }
  }
  return true;
}

/// All scenarios of the named suites, in registration order.
std::vector<const ScenarioSpec*> suites_selection(
    const ScenarioRegistry& reg, const std::vector<std::string>& suites) {
  std::vector<const ScenarioSpec*> out;
  for (const std::string& suite : suites) {
    const auto scenarios = reg.suite_scenarios(suite);
    out.insert(out.end(), scenarios.begin(), scenarios.end());
  }
  return out;
}

int cmd_list(const char* argv0, std::vector<std::string> args) {
  CommonOptions opts;
  if (!parse_common(args, opts)) return usage(argv0);
  std::vector<std::string> file_suites;
  if (!setup_registry(opts, file_suites)) return 2;

  const ScenarioRegistry& reg = ScenarioRegistry::instance();
  for (const SuiteSpec& suite : reg.suites()) {
    const auto scenarios = reg.suite_scenarios(suite.name);
    std::vector<const ScenarioSpec*> shown;
    for (const ScenarioSpec* s : scenarios) {
      if (args.empty()) {
        shown.push_back(s);
        continue;
      }
      for (const std::string& g : args) {
        if (glob_match(g, s->name)) {
          shown.push_back(s);
          break;
        }
      }
    }
    if (shown.empty()) continue;
    std::printf("%s — %s%s\n", suite.name.c_str(), suite.description.c_str(),
                suite.emit_by_default ? "" : "  [not in emit --all]");
    for (const ScenarioSpec* s : shown) std::printf("  %s\n", s->name.c_str());
  }
  return 0;
}

int cmd_run(const char* argv0, std::vector<std::string> args) {
  CommonOptions copts;
  if (!parse_common(args, copts)) return usage(argv0);
  std::vector<std::string> file_suites;
  if (!setup_registry(copts, file_suites)) return 2;
  if (args.empty() && file_suites.empty()) return usage(argv0);

  const ScenarioRegistry& reg = ScenarioRegistry::instance();
  // With --file and no globs, the file's suites are the selection.
  const std::vector<const ScenarioSpec*> selection =
      args.empty() ? suites_selection(reg, file_suites) : reg.select_all(args);
  if (selection.empty()) {
    std::fprintf(stderr, "no scenarios match\n");
    return 1;
  }

  SweepOptions opts;
  opts.jobs = copts.jobs;
  opts.sim_threads = copts.sim_threads;
  opts.shard_threads = copts.shard_threads;
  opts.stepping = copts.stepping;
  unsigned done = 0;
  opts.on_done = [&](const ScenarioResult& r) {
    ++done;
    std::fprintf(stderr, "  [%u/%zu] %s%s\n", done, selection.size(), r.name.c_str(),
                 r.ok() ? "" : ("  FAILED: " + r.error).c_str());
  };
  std::vector<ScenarioResult> results = run_scenarios(selection, opts);

  bool failed = false;
  for (const ScenarioResult& r : results) {
    if (!r.ok()) failed = true;
  }

  // Suites whose every registered scenario ran get their paper table; a
  // partial selection (and every file suite, which has no custom printer)
  // gets a compact per-scenario metrics table instead.
  TableWriter partial({"scenario", "cycles", "skipped", "BW [B/cyc/core]",
                       "GFLOPS@ss", "FPU util", "ok"});
  bool any_partial = false;
  for (auto& [suite_name, set] : group_by_suite(std::move(results))) {
    const SuiteSpec& suite = reg.suite(suite_name);
    if (suite.print && set.size() == reg.suite_scenarios(suite_name).size()) {
      suite.print(set);
      continue;
    }
    for (const ScenarioResult& r : set.all()) {
      partial.add_row({r.name, std::to_string(r.metrics.cycles),
                       std::to_string(static_cast<unsigned long long>(r.sim_cycles_skipped)),
                       fmt(r.metrics.bw_per_core), fmt(r.metrics.gflops_ss),
                       pct(r.metrics.fpu_util), r.ok() ? "OK" : "FAIL: " + r.error});
      any_partial = true;
    }
  }
  if (any_partial) partial.print(std::cout);
  return failed ? 1 : 0;
}

int cmd_emit(const char* argv0, std::vector<std::string> args) {
  CommonOptions copts;
  bool all = false;
  std::string out_dir;
  if (!parse_common(args, copts)) return usage(argv0);
  std::vector<std::string> wanted;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--all") {
      all = true;
    } else if (args[i] == "--out" || args[i] == "-o") {
      if (i + 1 >= args.size()) return usage(argv0);
      out_dir = args[++i];
    } else if (args[i].rfind("--out=", 0) == 0) {
      out_dir = args[i].substr(6);
    } else {
      wanted.push_back(args[i]);
    }
  }
  if (out_dir.empty() || (all && !wanted.empty())) return usage(argv0);
  std::vector<std::string> file_suites;
  if (!setup_registry(copts, file_suites)) return 2;
  if (!all && wanted.empty() && file_suites.empty()) return usage(argv0);

  const ScenarioRegistry& reg = ScenarioRegistry::instance();
  // Resolve suite names/globs against the registry, keeping registration
  // order and deduplicating. With --file and no explicit selection, the
  // file's suites are emitted.
  std::vector<std::string> suites;
  if (all) {
    suites = default_emit_suites(reg);
  } else if (wanted.empty()) {
    suites = file_suites;
  } else if (!resolve_suite_globs(reg, wanted, suites)) {
    return 1;
  }
  if (suites.empty()) {
    std::fprintf(stderr, "no suites selected\n");
    return 1;
  }

  EmitOptions opts;
  opts.out_dir = out_dir;
  opts.jobs = copts.jobs;
  opts.sim_threads = copts.sim_threads;
  opts.shard_threads = copts.shard_threads;
  opts.stepping = copts.stepping;
  opts.log = &std::cerr;
  try {
    (void)emit_suites(reg, suites, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emit: %s\n", e.what());
    return 1;
  }
  return 0;
}

/// The --stepping flag spelled back for the tcdm-perf report; "default"
/// means each spec kept its own (event-driven) setting.
const char* stepping_name(const std::optional<SteppingMode>& m) {
  if (!m.has_value()) return "default";
  switch (*m) {
    case SteppingMode::kEventDriven: return "event";
    case SteppingMode::kCycleByCycle: return "cycle";
    case SteppingMode::kCrossCheck: return "check";
  }
  return "?";
}

int cmd_bench(const char* argv0, std::vector<std::string> args) {
  CommonOptions copts;
  if (!parse_common(args, copts)) return usage(argv0);
  bool all = false;
  unsigned reps = 3;
  std::string out_path;
  std::string metrics_dir;
  std::vector<std::string> wanted;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    std::string* str_out = nullptr;
    if (args[i] == "--all") {
      all = true;
      continue;
    } else if (args[i] == "--reps" || args[i].rfind("--reps=", 0) == 0) {
      if (args[i].size() == 6) {
        if (i + 1 >= args.size()) return usage(argv0);
        value = args[++i];
      } else {
        value = args[i].substr(7);
      }
      try {
        std::size_t pos = 0;
        const unsigned long parsed = std::stoul(value, &pos);
        if (pos != value.size() || parsed == 0 || parsed > 1000) return usage(argv0);
        reps = static_cast<unsigned>(parsed);
      } catch (const std::exception&) {
        return usage(argv0);
      }
      continue;
    } else if (args[i] == "--out" || args[i] == "-o") {
      if (i + 1 >= args.size()) return usage(argv0);
      value = args[i + 1];
      ++i;
      str_out = &out_path;
    } else if (args[i].rfind("--out=", 0) == 0) {
      value = args[i].substr(6);
      str_out = &out_path;
    } else if (args[i] == "--metrics-out") {
      if (i + 1 >= args.size()) return usage(argv0);
      value = args[i + 1];
      ++i;
      str_out = &metrics_dir;
    } else if (args[i].rfind("--metrics-out=", 0) == 0) {
      value = args[i].substr(14);
      str_out = &metrics_dir;
    } else {
      wanted.push_back(args[i]);
      continue;
    }
    if (value.empty()) return usage(argv0);  // --out= with nothing after
    *str_out = value;
  }
  if (all && !wanted.empty()) return usage(argv0);
  std::vector<std::string> file_suites;
  if (!setup_registry(copts, file_suites)) return 2;
  if (!all && wanted.empty() && file_suites.empty()) return usage(argv0);

  const ScenarioRegistry& reg = ScenarioRegistry::instance();
  std::vector<std::string> suites;
  if (all) {
    suites = default_emit_suites(reg);
  } else if (wanted.empty()) {
    suites = file_suites;
  } else if (!resolve_suite_globs(reg, wanted, suites)) {
    return 1;
  }
  if (suites.empty()) {
    std::fprintf(stderr, "no suites selected\n");
    return 1;
  }

  struct SuiteBench {
    std::string name;
    std::vector<const ScenarioSpec*> selection;
    unsigned scenarios = 0;
    unsigned long long sim_cycles = 0;       // sum of metrics.cycles, rep 0
    unsigned long long cycles_skipped = 0;   // event-driven skips, rep 0
    std::string fingerprint;                 // per-scenario cycle counts, rep 0
    std::vector<double> wall_s;              // one entry per repetition
  };
  std::vector<SuiteBench> benches;
  for (const std::string& s : suites) {
    SuiteBench b;
    b.name = s;
    b.selection = reg.suite_scenarios(s);
    benches.push_back(std::move(b));
  }

  SweepOptions sopts;
  sopts.jobs = copts.jobs;
  sopts.sim_threads = copts.sim_threads;
  sopts.shard_threads = copts.shard_threads;
  sopts.stepping = copts.stepping;
  using BenchClock = std::chrono::steady_clock;
  // Repetitions interleave across suites so host drift (thermal, noisy
  // neighbors) biases every suite equally; best-of-reps absorbs the noise.
  for (unsigned rep = 0; rep < reps; ++rep) {
    for (SuiteBench& b : benches) {
      const auto t0 = BenchClock::now();
      const std::vector<ScenarioResult> results = run_scenarios(b.selection, sopts);
      const double secs = std::chrono::duration<double>(BenchClock::now() - t0).count();
      std::string fp;
      unsigned long long cycles = 0;
      unsigned long long skipped = 0;
      for (const ScenarioResult& r : results) {
        if (!r.ok()) {
          std::fprintf(stderr, "bench: %s failed: %s\n", r.name.c_str(), r.error.c_str());
          return 1;
        }
        cycles += r.metrics.cycles;
        skipped += static_cast<unsigned long long>(r.sim_cycles_skipped);
        fp += r.name;
        fp += ':';
        fp += std::to_string(r.metrics.cycles);
        fp += ';';
      }
      if (rep == 0) {
        b.scenarios = static_cast<unsigned>(results.size());
        b.sim_cycles = cycles;
        b.cycles_skipped = skipped;
        b.fingerprint = std::move(fp);
      } else if (fp != b.fingerprint) {
        // Later reps reuse pooled clusters via reset(); divergence means a
        // determinism bug, which outranks any throughput number.
        std::fprintf(stderr, "bench: suite %s diverged between repetitions\n",
                     b.name.c_str());
        return 1;
      }
      b.wall_s.push_back(secs);
      std::fprintf(stderr, "  rep %u/%u %s: %.3fs\n", rep + 1, reps, b.name.c_str(), secs);
    }
  }

  TableWriter table({"suite", "scenarios", "Mcycles", "best [s]", "mean [s]",
                     "Mcyc/s", "sims/s"});
  double total_best = 0.0;
  unsigned long long total_cycles = 0;
  unsigned total_scenarios = 0;
  Json::Array suites_json;
  for (const SuiteBench& b : benches) {
    const double best = *std::min_element(b.wall_s.begin(), b.wall_s.end());
    double mean = 0.0;
    for (const double w : b.wall_s) mean += w;
    mean /= static_cast<double>(b.wall_s.size());
    const double mcyc = static_cast<double>(b.sim_cycles) / 1e6;
    table.add_row({b.name, std::to_string(b.scenarios), fmt(mcyc), fmt(best, 3),
                   fmt(mean, 3), fmt(mcyc / best),
                   fmt(static_cast<double>(b.scenarios) / best)});
    total_best += best;
    total_cycles += b.sim_cycles;
    total_scenarios += b.scenarios;
    Json s;
    s.set("suite", b.name);
    s.set("scenarios", b.scenarios);
    s.set("sim_cycles", b.sim_cycles);
    s.set("sim_cycles_skipped", b.cycles_skipped);
    Json::Array walls;
    for (const double w : b.wall_s) walls.emplace_back(w);
    s.set("wall_s", Json(std::move(walls)));
    s.set("best_wall_s", best);
    s.set("mean_wall_s", mean);
    s.set("cycles_per_sec", static_cast<double>(b.sim_cycles) / best);
    s.set("scenarios_per_sec", static_cast<double>(b.scenarios) / best);
    suites_json.push_back(std::move(s));
  }
  table.add_separator();
  table.add_row({"total", std::to_string(total_scenarios),
                 fmt(static_cast<double>(total_cycles) / 1e6), fmt(total_best, 3), "",
                 fmt(static_cast<double>(total_cycles) / 1e6 / total_best),
                 fmt(static_cast<double>(total_scenarios) / total_best)});
  table.print(std::cout);

  if (!out_path.empty()) {
    // tcdm-perf v1: the versioned perf-trajectory record CI archives per
    // commit. Everything except the wall times is deterministic, so two
    // reports from one commit diff only in the timing fields.
    Json doc;
    doc.set("format", "tcdm-perf");
    doc.set("version", 1);
    doc.set("reps", reps);
    doc.set("jobs", copts.jobs);
    doc.set("sim_threads", copts.sim_threads);
    doc.set("shard_threads", copts.shard_threads);
    doc.set("stepping", stepping_name(copts.stepping));
    Json host;
    host.set("hardware_concurrency", std::thread::hardware_concurrency());
    host.set("compiler", __VERSION__);
#ifdef NDEBUG
    host.set("build", "release");
#else
    host.set("build", "debug");
#endif
    doc.set("host", std::move(host));
    doc.set("suites", Json(std::move(suites_json)));
    Json totals;
    totals.set("scenarios", total_scenarios);
    totals.set("sim_cycles", total_cycles);
    totals.set("best_wall_s", total_best);
    totals.set("cycles_per_sec", static_cast<double>(total_cycles) / total_best);
    doc.set("totals", std::move(totals));
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", out_path.c_str());
      return 2;
    }
    out << doc.dump();
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "bench: write to %s failed\n", out_path.c_str());
      return 2;
    }
  }

  if (!metrics_dir.empty()) {
    // Untimed convenience pass: record the same selection's metrics docs
    // next to the perf report (emit_suites is the shared backend).
    EmitOptions eopts;
    eopts.out_dir = metrics_dir;
    eopts.jobs = copts.jobs;
    eopts.sim_threads = copts.sim_threads;
    eopts.shard_threads = copts.shard_threads;
    eopts.stepping = copts.stepping;
    eopts.log = &std::cerr;
    try {
      (void)emit_suites(reg, suites, eopts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}

int cmd_validate(std::vector<std::string> args) {
  if (args.empty()) args.emplace_back("-");  // gen | validate pipelines
  int rc = 0;  // worst outcome wins: 2 (unreadable, IO) > 1 (invalid content)
  for (const std::string& path : args) {
    const std::string source = path == "-" ? "<stdin>" : path;
    try {
      const LoadedSuite suite = load_suite_file(path);
      std::printf("%s: suite \"%s\" OK (%zu scenarios)\n", source.c_str(),
                  suite.suite.name.c_str(), suite.scenarios.size());
    } catch (const ScenarioFileIoError& e) {
      std::fprintf(stderr, "%s\n", e.what());
      rc = 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      rc = std::max(rc, 1);
    }
  }
  return rc;
}

int cmd_gen(const char* argv0, std::vector<std::string> args) {
  GenOptions opts;
  std::string out_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    if (args[i] == "--seed" || args[i] == "--count" || args[i] == "--out") {
      if (i + 1 >= args.size()) return usage(argv0);
      value = args[i + 1];
    } else if (args[i].rfind("--seed=", 0) == 0) {
      value = args[i].substr(7);
    } else if (args[i].rfind("--count=", 0) == 0) {
      value = args[i].substr(8);
    } else if (args[i].rfind("--out=", 0) == 0) {
      value = args[i].substr(6);
    } else {
      return usage(argv0);
    }
    const bool is_seed = args[i].rfind("--seed", 0) == 0;
    const bool is_count = args[i].rfind("--count", 0) == 0;
    if (args[i].find('=') == std::string::npos) ++i;
    if (is_seed || is_count) {
      // Strict: the whole value must be a non-negative integer. stoull
      // alone would wrap "-1" and stop at trailing junk ("20x") — fatal
      // for a tool whose point is seed-exact reproducibility.
      try {
        std::size_t pos = 0;
        if (value.empty() || value[0] == '-' || value[0] == '+') throw std::invalid_argument(value);
        const unsigned long long parsed = std::stoull(value, &pos);
        if (pos != value.size()) throw std::invalid_argument(value);
        if (is_seed) {
          opts.seed = parsed;
        } else if (parsed > 4294967295ULL) {
          throw std::out_of_range(value);
        } else {
          opts.count = static_cast<unsigned>(parsed);
        }
      } catch (const std::exception&) {
        return usage(argv0);
      }
    } else {
      // `--out=` with an empty value (e.g. an unset shell variable) must
      // not silently fall back to stdout, matching emit's --out handling.
      if (value.empty()) return usage(argv0);
      out_path = value;
    }
  }
  if (opts.count == 0) return usage(argv0);
  if (opts.count > kMaxScenariosPerSuite) {
    std::fprintf(stderr, "gen: --count is capped at %zu scenarios per suite\n",
                 kMaxScenariosPerSuite);
    return 2;
  }

  std::string text;
  try {
    text = generate_suite(opts).dump();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gen: internal error: %s\n", e.what());
    return 2;
  }
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
    return 0;
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "gen: cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  out << text;
  out.flush();  // surface a full-disk/IO failure before the exit code
  if (!out.good()) {
    std::fprintf(stderr, "gen: write to %s failed\n", out_path.c_str());
    return 2;
  }
  return 0;
}

/// Strict non-negative integer ("all" is not accepted; 0 means unlimited
/// for --budget and disabled for --fail-after).
bool parse_size(const std::string& value, std::size_t& out) {
  try {
    std::size_t pos = 0;
    if (value.empty() || value[0] == '-' || value[0] == '+') return false;
    const unsigned long long parsed = std::stoull(value, &pos);
    if (pos != value.size()) return false;
    out = static_cast<std::size_t>(parsed);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

int cmd_explore(const char* argv0, std::vector<std::string> args) {
  CommonOptions copts;
  if (!parse_common(args, copts)) return usage(argv0);

  explore::ExploreOptions eopts;
  eopts.jobs = copts.jobs;
  eopts.sim_threads = copts.sim_threads;
  eopts.shard_threads = copts.shard_threads;
  eopts.stepping = copts.stepping;
  eopts.log = &std::cerr;
  std::string report_path;
  std::string stats_path;
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    enum class Want { kObjective, kAreaCap, kBudget, kCache, kState, kReport,
                      kStats, kFailAfter } want;
    if (args[i] == "--resume") {
      eopts.resume = true;
      continue;
    } else if (args[i] == "--no-prune") {
      eopts.prune = false;
      continue;
    } else if (args[i] == "--objective") {
      want = Want::kObjective;
    } else if (args[i] == "--area-cap") {
      want = Want::kAreaCap;
    } else if (args[i] == "--budget") {
      want = Want::kBudget;
    } else if (args[i] == "--cache") {
      want = Want::kCache;
    } else if (args[i] == "--state") {
      want = Want::kState;
    } else if (args[i] == "--report") {
      want = Want::kReport;
    } else if (args[i] == "--stats-out") {
      want = Want::kStats;
    } else if (args[i] == "--fail-after") {
      want = Want::kFailAfter;
    } else if (args[i].rfind("--", 0) == 0 &&
               args[i].find('=') != std::string::npos) {
      const std::string flag = args[i].substr(0, args[i].find('='));
      value = args[i].substr(args[i].find('=') + 1);
      if (flag == "--objective") want = Want::kObjective;
      else if (flag == "--area-cap") want = Want::kAreaCap;
      else if (flag == "--budget") want = Want::kBudget;
      else if (flag == "--cache") want = Want::kCache;
      else if (flag == "--state") want = Want::kState;
      else if (flag == "--report") want = Want::kReport;
      else if (flag == "--stats-out") want = Want::kStats;
      else if (flag == "--fail-after") want = Want::kFailAfter;
      else return usage(argv0);
    } else {
      rest.push_back(args[i]);
      continue;
    }
    if (value.empty()) {
      if (args[i].find('=') == std::string::npos) {
        if (i + 1 >= args.size()) return usage(argv0);
        value = args[++i];
      }
      if (value.empty()) return usage(argv0);  // --flag= with nothing after
    }
    switch (want) {
      case Want::kObjective:
        try {
          eopts.objective.kind = explore::objective_by_name(value);
        } catch (const std::invalid_argument& e) {
          std::fprintf(stderr, "explore: %s\n", e.what());
          return 2;
        }
        break;
      case Want::kAreaCap:
        try {
          std::size_t pos = 0;
          eopts.objective.area_cap_mge = std::stod(value, &pos);
          if (pos != value.size() || eopts.objective.area_cap_mge <= 0.0) {
            return usage(argv0);
          }
        } catch (const std::exception&) {
          return usage(argv0);
        }
        break;
      case Want::kBudget:
        if (!parse_size(value, eopts.budget)) return usage(argv0);
        break;
      case Want::kCache: eopts.cache_path = value; break;
      case Want::kState: eopts.state_path = value; break;
      case Want::kReport: report_path = value; break;
      case Want::kStats: stats_path = value; break;
      case Want::kFailAfter:
        if (!parse_size(value, eopts.fail_after)) return usage(argv0);
        break;
    }
  }
  // The search space is one suite file: either a positional path or --file
  // (but not both, and exactly one — explore does not span suites).
  for (const std::string& f : copts.files) rest.push_back(f);
  if (rest.size() != 1 || copts.no_builtin) return usage(argv0);
  if (eopts.resume && eopts.state_path.empty()) {
    std::fprintf(stderr, "explore: --resume requires --state\n");
    return 2;
  }

  LoadedSuite suite;
  try {
    suite = load_suite_file(rest[0]);
  } catch (const ScenarioFileIoError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  explore::ExploreOutcome outcome;
  try {
    outcome = explore::run_explore(suite, eopts);
  } catch (const explore::ExploreAborted& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 3;
  } catch (const explore::ExploreFileError& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "explore: %s\n", e.what());
    return 2;
  }

  explore::print_frontier(std::cout, eopts, outcome);
  // Fixed-format machine-readable summary (the CI warm-cache smoke leg
  // greps simulations=0 out of this line).
  std::printf(
      "explore: candidates=%zu pruned_area_cap=%zu pruned_dominated=%zu "
      "cache_hits=%zu simulations=%zu failures=%zu frontier=%zu "
      "budget_exhausted=%d\n",
      outcome.candidates, outcome.pruned_area_cap, outcome.pruned_dominated,
      outcome.cache_hits, outcome.simulations, outcome.failures,
      outcome.frontier.size(), outcome.budget_exhausted ? 1 : 0);

  const auto write_file = [](const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "explore: cannot open %s for writing\n", path.c_str());
      return false;
    }
    out << text;
    out.flush();
    if (!out.good()) {
      std::fprintf(stderr, "explore: write to %s failed\n", path.c_str());
      return false;
    }
    return true;
  };
  if (!report_path.empty() &&
      !write_file(report_path, explore::report_json(suite, eopts, outcome).dump())) {
    return 2;
  }
  if (!stats_path.empty() && !write_file(stats_path, outcome.stats_json)) return 2;

  return outcome.failures > 0 ? 1 : 0;
}

int main_impl(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "list") return cmd_list(argv[0], std::move(args));
  if (cmd == "run") return cmd_run(argv[0], std::move(args));
  if (cmd == "emit") return cmd_emit(argv[0], std::move(args));
  if (cmd == "bench") return cmd_bench(argv[0], std::move(args));
  if (cmd == "validate") return cmd_validate(std::move(args));
  if (cmd == "gen") return cmd_gen(argv[0], std::move(args));
  if (cmd == "explore") return cmd_explore(argv[0], std::move(args));
  std::fprintf(stderr, "unknown subcommand '%s'\n", cmd.c_str());
  return usage(argv[0]);
}

}  // namespace
}  // namespace tcdm::scenario

int main(int argc, char** argv) { return tcdm::scenario::main_impl(argc, argv); }
