// tcdm_run: one CLI for every paper table, figure, ablation and study.
// Drives the scenario registry, so reproducing any artifact no longer
// requires knowing which binary owns it.
//
//   tcdm_run list [glob...]              list suites and scenarios
//   tcdm_run run [-j N] [--sim-threads N] <glob...>
//                                        run a selection; print suite tables
//   tcdm_run emit [-j N] [--sim-threads N] --out <dir> (--all | suite...)
//                                        sweep suites, write <dir>/<suite>.json
//
// Globs match full scenario names (`*` crosses `/`): `table1/*`,
// `*/mp64spatz4/*`, `ablation_burst/maxlen2`. Parallel runs (-j) produce
// byte-identical emissions to serial ones: every scenario simulates on its
// own cluster and results are collected in registration order. --sim-threads
// additionally parallelizes each cluster's cycle loop across its tiles
// (deterministic tile-parallel stepping, bit-identical at any count; 0 =
// hardware concurrency) — the right knob when one big-cluster scenario,
// not the sweep width, dominates wall-clock.
// Exit codes: 0 ok, 1 scenario failure or empty selection, 2 usage/IO.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/analytics/report.hpp"
#include "src/scenario/builtin.hpp"
#include "src/scenario/emit.hpp"
#include "src/scenario/runner.hpp"

namespace tcdm::scenario {
namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s list [glob...]\n"
               "       %s run [-j N] [--sim-threads N] <glob...>\n"
               "       %s emit [-j N] [--sim-threads N] --out <dir> (--all | suite|glob...)\n",
               argv0, argv0, argv0);
  return 2;
}

/// Parses `-j N` / `-jN` / `--jobs N` and `--sim-threads N` /
/// `--sim-threads=N` out of args; returns false on a malformed value.
bool parse_jobs(std::vector<std::string>& args, unsigned& jobs, unsigned& sim_threads) {
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < args.size(); ++i) {
    std::string value;
    unsigned* out = &jobs;
    if (args[i] == "-j" || args[i] == "--jobs") {
      if (i + 1 >= args.size()) return false;
      value = args[++i];
    } else if (args[i].rfind("-j", 0) == 0 && args[i].size() > 2) {
      value = args[i].substr(2);
    } else if (args[i] == "--sim-threads") {
      if (i + 1 >= args.size()) return false;
      value = args[++i];
      out = &sim_threads;
    } else if (args[i].rfind("--sim-threads=", 0) == 0) {
      value = args[i].substr(14);
      out = &sim_threads;
    } else {
      rest.push_back(args[i]);
      continue;
    }
    try {
      *out = static_cast<unsigned>(std::stoul(value));
    } catch (const std::exception&) {
      return false;
    }
    // SweepOptions uses 0 for "keep each spec's setting", so an explicit
    // `--sim-threads 0` resolves to the hardware concurrency here.
    if (out == &sim_threads && sim_threads == 0) {
      sim_threads = std::max(1u, std::thread::hardware_concurrency());
    }
  }
  args = std::move(rest);
  return true;
}

int cmd_list(const ScenarioRegistry& reg, const std::vector<std::string>& globs) {
  for (const SuiteSpec& suite : reg.suites()) {
    const auto scenarios = reg.suite_scenarios(suite.name);
    std::vector<const ScenarioSpec*> shown;
    for (const ScenarioSpec* s : scenarios) {
      if (globs.empty()) {
        shown.push_back(s);
        continue;
      }
      for (const std::string& g : globs) {
        if (glob_match(g, s->name)) {
          shown.push_back(s);
          break;
        }
      }
    }
    if (shown.empty()) continue;
    std::printf("%s — %s%s\n", suite.name.c_str(), suite.description.c_str(),
                suite.emit_by_default ? "" : "  [not in emit --all]");
    for (const ScenarioSpec* s : shown) std::printf("  %s\n", s->name.c_str());
  }
  return 0;
}

int cmd_run(const ScenarioRegistry& reg, std::vector<std::string> args) {
  unsigned jobs = 1;
  unsigned sim_threads = 0;
  if (!parse_jobs(args, jobs, sim_threads) || args.empty()) return 2;

  const std::vector<const ScenarioSpec*> selection = reg.select_all(args);
  if (selection.empty()) {
    std::fprintf(stderr, "no scenarios match\n");
    return 1;
  }

  SweepOptions opts;
  opts.jobs = jobs;
  opts.sim_threads = sim_threads;
  unsigned done = 0;
  opts.on_done = [&](const ScenarioResult& r) {
    ++done;
    std::fprintf(stderr, "  [%u/%zu] %s%s\n", done, selection.size(), r.name.c_str(),
                 r.ok() ? "" : ("  FAILED: " + r.error).c_str());
  };
  std::vector<ScenarioResult> results = run_scenarios(selection, opts);

  bool failed = false;
  for (const ScenarioResult& r : results) {
    if (!r.ok()) failed = true;
  }

  // Suites whose every registered scenario ran get their paper table; a
  // partial selection gets a compact per-scenario metrics table instead.
  TableWriter partial({"scenario", "cycles", "BW [B/cyc/core]", "GFLOPS@ss",
                       "FPU util", "ok"});
  bool any_partial = false;
  for (auto& [suite_name, set] : group_by_suite(std::move(results))) {
    const SuiteSpec& suite = reg.suite(suite_name);
    if (suite.print && set.size() == reg.suite_scenarios(suite_name).size()) {
      suite.print(set);
      continue;
    }
    for (const ScenarioResult& r : set.all()) {
      partial.add_row({r.name, std::to_string(r.metrics.cycles),
                       fmt(r.metrics.bw_per_core), fmt(r.metrics.gflops_ss),
                       pct(r.metrics.fpu_util), r.ok() ? "OK" : "FAIL: " + r.error});
      any_partial = true;
    }
  }
  if (any_partial) partial.print(std::cout);
  return failed ? 1 : 0;
}

int cmd_emit(const ScenarioRegistry& reg, std::vector<std::string> args) {
  unsigned jobs = 1;
  unsigned sim_threads = 0;
  bool all = false;
  std::string out_dir;
  if (!parse_jobs(args, jobs, sim_threads)) return 2;
  std::vector<std::string> wanted;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--all") {
      all = true;
    } else if (args[i] == "--out" || args[i] == "-o") {
      if (i + 1 >= args.size()) return 2;
      out_dir = args[++i];
    } else if (args[i].rfind("--out=", 0) == 0) {
      out_dir = args[i].substr(6);
    } else {
      wanted.push_back(args[i]);
    }
  }
  if (out_dir.empty() || (all == !wanted.empty())) return 2;

  // Resolve suite names/globs against the registry, keeping registration
  // order and deduplicating.
  std::vector<std::string> suites;
  if (all) {
    suites = default_emit_suites(reg);
  } else {
    std::set<std::string> seen;
    for (const SuiteSpec& s : reg.suites()) {
      for (const std::string& w : wanted) {
        if ((glob_match(w, s.name)) && seen.insert(s.name).second) {
          suites.push_back(s.name);
          break;
        }
      }
    }
    for (const std::string& w : wanted) {
      bool matched = false;
      for (const SuiteSpec& s : reg.suites()) {
        if (glob_match(w, s.name)) matched = true;
      }
      if (!matched) {
        std::fprintf(stderr, "no suite matches '%s'\n", w.c_str());
        return 1;
      }
    }
  }
  if (suites.empty()) {
    std::fprintf(stderr, "no suites selected\n");
    return 1;
  }

  EmitOptions opts;
  opts.out_dir = out_dir;
  opts.jobs = jobs;
  opts.sim_threads = sim_threads;
  opts.log = &std::cerr;
  try {
    (void)emit_suites(reg, suites, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "emit: %s\n", e.what());
    return 1;
  }
  return 0;
}

int main_impl(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  register_builtin();
  const ScenarioRegistry& reg = ScenarioRegistry::instance();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  if (cmd == "list") return cmd_list(reg, args);
  if (cmd == "run") {
    const int rc = cmd_run(reg, std::move(args));
    return rc == 2 ? usage(argv[0]) : rc;
  }
  if (cmd == "emit") {
    const int rc = cmd_emit(reg, std::move(args));
    return rc == 2 ? usage(argv[0]) : rc;
  }
  return usage(argv[0]);
}

}  // namespace
}  // namespace tcdm::scenario

int main(int argc, char** argv) { return tcdm::scenario::main_impl(argc, argv); }
