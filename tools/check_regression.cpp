// CI regression gate: compare metrics JSON emitted by the bench binaries'
// --metrics-out mode against the recorded baselines/ documents. All logic
// lives in src/analytics/metrics_regression.* so it is unit-testable; this
// binary only forwards argv and the exit code.
//
//   ./check_regression baselines/table1.json out/table1.json
#include "src/analytics/metrics_regression.hpp"

int main(int argc, char** argv) { return tcdm::metrics::run_check_cli(argc, argv); }
